package fmindex

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveApproxPositions returns every text position where pattern matches
// with at most k substitutions.
func naiveApproxPositions(text, pattern []uint8, k int) []int32 {
	var out []int32
	if len(pattern) == 0 {
		for i := 0; i <= len(text); i++ {
			out = append(out, int32(i))
		}
		return out
	}
	for i := 0; i+len(pattern) <= len(text); i++ {
		mm := 0
		for j := range pattern {
			if text[i+j] != pattern[j] {
				mm++
				if mm > k {
					break
				}
			}
		}
		if mm <= k {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestCountApproxMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	text := buildText(rng, 2000)
	ix := buildWith(t, text,
		func(d []uint8) (OccProvider, error) { return NewWaveletOcc(d, 4, testParams) },
		fullSAOpts)
	for _, k := range []int{0, 1, 2} {
		for trial := 0; trial < 60; trial++ {
			var pattern []uint8
			if trial%2 == 0 {
				l := 8 + rng.Intn(15)
				s := rng.Intn(len(text) - l)
				pattern = append([]uint8(nil), text[s:s+l]...)
				// Mutate up to k positions so approximate search is needed.
				for m := 0; m < k && len(pattern) > 0; m++ {
					p := rng.Intn(len(pattern))
					pattern[p] = uint8((int(pattern[p]) + 1 + rng.Intn(3)) % 4)
				}
			} else {
				pattern = buildText(rng, 6+rng.Intn(10))
			}
			matches, err := ix.CountApprox(pattern, k)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveApproxPositions(text, pattern, k)
			if got := TotalOccurrences(matches); got != len(want) {
				t.Fatalf("k=%d: %d occurrences, want %d (pattern %v)", k, got, len(want), pattern)
			}
			// Located positions must match the naive set exactly.
			var got []int32
			for _, m := range matches {
				ps, err := ix.Locate(m.Range)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, ps...)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				t.Fatalf("k=%d: located %d, want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d: position %d = %d, want %d", k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCountApproxZeroEqualsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	text := buildText(rng, 1000)
	ix := buildWith(t, text,
		func(d []uint8) (OccProvider, error) { return NewWaveletOcc(d, 4, testParams) },
		fullSAOpts)
	for trial := 0; trial < 30; trial++ {
		l := 5 + rng.Intn(15)
		s := rng.Intn(len(text) - l)
		pattern := text[s : s+l]
		matches, err := ix.CountApprox(pattern, 0)
		if err != nil {
			t.Fatal(err)
		}
		exact := ix.Count(pattern)
		if len(matches) != 1 || matches[0].Range != exact || matches[0].Mismatches != 0 {
			t.Fatalf("k=0 approx %v != exact %v", matches, exact)
		}
	}
}

func TestCountApproxStepsExceedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	text := buildText(rng, 3000)
	ix := buildWith(t, text,
		func(d []uint8) (OccProvider, error) { return NewWaveletOcc(d, 4, testParams) },
		fullSAOpts)
	pattern := text[100:135]
	_, steps0, err := ix.CountApproxSteps(pattern, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, steps1, err := ix.CountApproxSteps(pattern, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, steps2, err := ix.CountApproxSteps(pattern, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(steps0 < steps1 && steps1 < steps2) {
		t.Errorf("steps not growing with budget: %d, %d, %d", steps0, steps1, steps2)
	}
	if steps0 < len(pattern) {
		t.Errorf("k=0 steps %d below pattern length %d", steps0, len(pattern))
	}
}

func TestCountApproxDisjointRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	text := buildText(rng, 2000)
	ix := buildWith(t, text,
		func(d []uint8) (OccProvider, error) { return NewWaveletOcc(d, 4, testParams) },
		fullSAOpts)
	pattern := text[50:70]
	matches, err := ix.CountApprox(pattern, 2)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]ApproxMatch(nil), matches...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Range.Start < sorted[j].Range.Start })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Range.Start <= sorted[i-1].Range.End {
			t.Fatalf("overlapping ranges %v and %v", sorted[i-1], sorted[i])
		}
	}
}

func TestCountApproxValidation(t *testing.T) {
	text := []uint8{0, 1, 2, 3}
	ix := buildWith(t, text,
		func(d []uint8) (OccProvider, error) { return NewFlatOcc(d, 4) },
		fullSAOpts)
	if _, err := ix.CountApprox([]uint8{0, 1}, -1); err == nil {
		t.Error("accepted negative budget")
	}
	if _, err := ix.CountApprox([]uint8{0, 1}, MaxMismatchBudget+1); err == nil {
		t.Error("accepted excessive budget")
	}
	if _, err := ix.CountApprox([]uint8{0, 9}, 1); err == nil {
		t.Error("accepted out-of-alphabet symbol")
	}
}

func TestBestApprox(t *testing.T) {
	if BestApprox(nil) != nil {
		t.Error("BestApprox(nil) should be nil")
	}
	in := []ApproxMatch{
		{Range: Range{Start: 5, End: 6}, Mismatches: 2},
		{Range: Range{Start: 1, End: 1}, Mismatches: 1},
		{Range: Range{Start: 9, End: 10}, Mismatches: 1},
	}
	best := BestApprox(in)
	if len(best) != 2 || best[0].Mismatches != 1 || best[1].Mismatches != 1 {
		t.Errorf("BestApprox = %v", best)
	}
}
