package fmindex

import (
	"fmt"

	"bwaver/internal/rrr"
	"bwaver/internal/wavelet"
)

// RLFMOcc is a run-length FM-index Occ provider (Mäkinen & Navarro): the
// BWT is stored as its run structure — a head bit-vector marking run starts
// (RRR-compressed, since it is sparse on run-rich BWTs), a wavelet tree
// over the per-run symbols, and per-symbol run-length prefix sums. Space
// scales with the number of runs r instead of the text length n, the other
// classic way to exploit exactly the BWT run structure the paper's RRR
// encoding exploits — which makes it the natural extra ablation point next
// to wavelet/RRR, checkpointed, and flat.
type RLFMOcc struct {
	n     int
	sigma int
	// heads has a 1 at every run start; rank gives the run containing a
	// position, select gives a run's start.
	heads *rrr.Sequence
	// runs is the wavelet tree over the r run symbols.
	runs *wavelet.Tree
	// prefixLens[c][k] is the total length of the first k runs of symbol
	// c, in BWT order; len(prefixLens[c]) == (#runs of c)+1.
	prefixLens [][]int32
}

// NewRLFMOcc builds the run-length structure over BWT data.
func NewRLFMOcc(data []uint8, sigma int, params rrr.Params) (*RLFMOcc, error) {
	if sigma < 2 || sigma > 256 {
		return nil, fmt.Errorf("fmindex: rlfm alphabet %d outside [2,256]", sigma)
	}
	for i, s := range data {
		if int(s) >= sigma {
			return nil, fmt.Errorf("fmindex: rlfm symbol %d at %d outside alphabet [0,%d)", s, i, sigma)
		}
	}
	// One pass to find the runs.
	var runSymbols []uint8
	var runLens []int32
	for i := 0; i < len(data); {
		j := i
		for j < len(data) && data[j] == data[i] {
			j++
		}
		runSymbols = append(runSymbols, data[i])
		runLens = append(runLens, int32(j-i))
		i = j
	}
	heads, err := rrr.New(func(i int) bool {
		// A position is a run head iff it is 0 or differs from its
		// predecessor.
		return i == 0 || data[i] != data[i-1]
	}, len(data), params)
	if err != nil {
		return nil, err
	}
	runs, err := wavelet.New(runSymbols, sigma, wavelet.PlainBackend())
	if err != nil {
		return nil, err
	}
	prefixLens := make([][]int32, sigma)
	for c := range prefixLens {
		prefixLens[c] = []int32{0}
	}
	for k, sym := range runSymbols {
		p := prefixLens[sym]
		prefixLens[sym] = append(p, p[len(p)-1]+runLens[k])
	}
	return &RLFMOcc{
		n: len(data), sigma: sigma,
		heads: heads, runs: runs, prefixLens: prefixLens,
	}, nil
}

// Occ returns the occurrences of sym in data[0, i).
func (r *RLFMOcc) Occ(sym uint8, i int) int {
	if i <= 0 || int(sym) >= r.sigma {
		return 0
	}
	// Run containing position i-1 (0-based run index).
	run := r.heads.Rank1(i) - 1
	// Complete runs of sym strictly before it.
	full := r.runs.Rank(sym, run)
	count := int(r.prefixLens[sym][full])
	if r.runs.Access(run) == sym {
		runStart := r.heads.Select1(run + 1)
		count += i - runStart
	}
	return count
}

// Symbol returns the i-th BWT symbol (needed for LF walks).
func (r *RLFMOcc) Symbol(i int) uint8 {
	return r.runs.Access(r.heads.Rank1(i+1) - 1)
}

// Len returns the encoded text length.
func (r *RLFMOcc) Len() int { return r.n }

// Sigma returns the alphabet size.
func (r *RLFMOcc) Sigma() int { return r.sigma }

// Runs returns the number of BWT runs the structure stores.
func (r *RLFMOcc) Runs() int { return r.runs.Len() }

// SizeBytes returns the structure's footprint, counting the shared RRR
// table once.
func (r *RLFMOcc) SizeBytes() int {
	size := r.heads.SizeBytes() + r.heads.SharedSizeBytes() + r.runs.SizeBytes()
	for _, p := range r.prefixLens {
		size += len(p) * 4
	}
	return size
}

// Name identifies the provider.
func (r *RLFMOcc) Name() string { return "rlfm" }
