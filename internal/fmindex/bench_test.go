package fmindex

import (
	"fmt"
	"math/rand"
	"testing"

	"bwaver/internal/bwt"
	"bwaver/internal/rrr"
	"bwaver/internal/suffixarray"
	"bwaver/internal/wavelet"
)

// benchIndex builds an index over 256 kbp of repeat-structured DNA with the
// requested provider.
func benchIndex(b *testing.B, mk func(data []uint8) (OccProvider, error)) (*Index, []uint8) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	pattern := buildText(rng, 9973)
	text := make([]uint8, 0, 1<<18)
	for len(text) < 1<<18 {
		text = append(text, pattern...)
		text = append(text, buildText(rng, 503)...)
	}
	sa, err := suffixarray.Build(text, 4)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := bwt.Transform(text, sa)
	if err != nil {
		b.Fatal(err)
	}
	occ, err := mk(tr.Data)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := New(tr, 4, occ, Options{SA: sa})
	if err != nil {
		b.Fatal(err)
	}
	return ix, text
}

func BenchmarkBackwardSearch(b *testing.B) {
	providers := []struct {
		name string
		mk   func(data []uint8) (OccProvider, error)
	}{
		{"wavelet-rrr", func(d []uint8) (OccProvider, error) { return NewWaveletOcc(d, 4, rrr.DefaultParams) }},
		{"wavelet-plain", func(d []uint8) (OccProvider, error) {
			return NewWaveletOccBackend(d, 4, wavelet.PlainBackend())
		}},
		{"checkpoint", func(d []uint8) (OccProvider, error) { return NewCheckpointOcc(d) }},
		{"rlfm", func(d []uint8) (OccProvider, error) { return NewRLFMOcc(d, 4, rrr.DefaultParams) }},
	}
	for _, p := range providers {
		ix, text := benchIndex(b, p.mk)
		rng := rand.New(rand.NewSource(4))
		patterns := make([][]uint8, 256)
		for i := range patterns {
			s := rng.Intn(len(text) - 40)
			patterns[i] = text[s : s+40]
		}
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(40)
			for i := 0; i < b.N; i++ {
				ix.Count(patterns[i%len(patterns)])
			}
		})
	}
}

func BenchmarkLocate(b *testing.B) {
	ix, text := benchIndex(b, func(d []uint8) (OccProvider, error) {
		return NewWaveletOcc(d, 4, rrr.DefaultParams)
	})
	r := ix.Count(text[100:130])
	if r.Empty() {
		b.Fatal("bench pattern not found")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Locate(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocateAppend is the allocation-free counterpart: the caller's
// slab absorbs every position, so steady state reports 0 allocs/op.
func BenchmarkLocateAppend(b *testing.B) {
	ix, text := benchIndex(b, func(d []uint8) (OccProvider, error) {
		return NewWaveletOcc(d, 4, rrr.DefaultParams)
	})
	r := ix.Count(text[100:130])
	if r.Empty() {
		b.Fatal("bench pattern not found")
	}
	slab := make([]int32, 0, r.Count())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if slab, err = ix.LocateAppend(slab[:0], r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchWithFtab pits the prefix-table search against the plain
// backward search on the same 40 bp patterns.
func BenchmarkSearchWithFtab(b *testing.B) {
	ix, text := benchIndex(b, func(d []uint8) (OccProvider, error) {
		return NewWaveletOcc(d, 4, rrr.DefaultParams)
	})
	rng := rand.New(rand.NewSource(5))
	patterns := make([][]uint8, 256)
	for i := range patterns {
		s := rng.Intn(len(text) - 40)
		patterns[i] = text[s : s+40]
	}
	for _, k := range []int{0, 8, 10} {
		if k > 0 {
			ftab, err := ix.BuildFtab(k)
			if err != nil {
				b.Fatal(err)
			}
			ix.SetFtab(ftab)
		} else {
			ix.SetFtab(nil)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(40)
			for i := 0; i < b.N; i++ {
				ix.SearchWithFtab(patterns[i%len(patterns)])
			}
		})
	}
}

func BenchmarkCountApprox(b *testing.B) {
	ix, text := benchIndex(b, func(d []uint8) (OccProvider, error) {
		return NewWaveletOcc(d, 4, rrr.DefaultParams)
	})
	pattern := append([]uint8(nil), text[5000:5035]...)
	pattern[17] ^= 1 // one mismatch
	for _, k := range []int{0, 1, 2} {
		b.Run("k="+string(rune('0'+k)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ix.CountApprox(pattern, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
