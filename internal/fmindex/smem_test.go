package fmindex

import (
	"math/rand"
	"testing"

	"bwaver/internal/rrr"
)

// bruteSMEMs computes SMEMs by definition: exact matches of pattern slices
// that occur in text and are not contained in any other occurring slice.
func bruteSMEMs(text, pattern []uint8, minLen int) [][2]int {
	occurs := func(s, e int) bool {
		return len(naiveOccurrences(text, pattern[s:e])) > 0
	}
	// Locally maximal matches: cannot extend either direction.
	var mems [][2]int
	for s := 0; s < len(pattern); s++ {
		for e := s + 1; e <= len(pattern); e++ {
			if !occurs(s, e) {
				break
			}
			leftMax := s == 0 || !occurs(s-1, e)
			rightMax := e == len(pattern) || !occurs(s, e+1)
			if leftMax && rightMax {
				mems = append(mems, [2]int{s, e})
			}
		}
	}
	// Super-maximal: not contained in another MEM.
	var out [][2]int
	for _, m := range mems {
		contained := false
		for _, o := range mems {
			if o != m && o[0] <= m[0] && m[1] <= o[1] {
				contained = true
				break
			}
		}
		if !contained && m[1]-m[0] >= minLen {
			out = append(out, m)
		}
	}
	return out
}

func TestSMEMsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 40; trial++ {
		// Repetitive texts make interesting SMEM structure.
		unit := buildText(rng, 13+rng.Intn(30))
		var text []uint8
		for len(text) < 1200 {
			text = append(text, unit...)
			text = append(text, buildText(rng, 5)...)
		}
		bi := buildBi(t, text)
		var pattern []uint8
		switch trial % 3 {
		case 0:
			pattern = buildText(rng, 20+rng.Intn(40))
		case 1: // mutated substring
			s := rng.Intn(len(text) - 60)
			pattern = append([]uint8(nil), text[s:s+60]...)
			for m := 0; m < 3; m++ {
				p := rng.Intn(len(pattern))
				pattern[p] = uint8((int(pattern[p]) + 1 + rng.Intn(3)) % 4)
			}
		case 2: // chimera of two loci
			s1 := rng.Intn(len(text) - 30)
			s2 := rng.Intn(len(text) - 30)
			pattern = append(append([]uint8(nil), text[s1:s1+25]...), text[s2:s2+25]...)
		}
		want := bruteSMEMs(text, pattern, 1)
		got, err := bi.SMEMs(pattern, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d SMEMs, want %d\ngot:  %v\nwant: %v\npattern: %v",
				trial, len(got), len(want), smemIntervals(got), want, pattern)
		}
		for i := range want {
			if got[i].Start != want[i][0] || got[i].End != want[i][1] {
				t.Fatalf("trial %d: SMEM %d = [%d,%d), want [%d,%d)",
					trial, i, got[i].Start, got[i].End, want[i][0], want[i][1])
			}
			// The interval must count the slice's occurrences.
			plain := bi.Forward().Count(pattern[got[i].Start:got[i].End])
			if got[i].Rows.Fwd != plain {
				t.Fatalf("trial %d: SMEM %d rows %v, plain %v", trial, i, got[i].Rows.Fwd, plain)
			}
		}
	}
}

func smemIntervals(ss []SMEM) [][2]int {
	out := make([][2]int, len(ss))
	for i, s := range ss {
		out[i] = [2]int{s.Start, s.End}
	}
	return out
}

func TestSMEMsMinLenFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	text := buildText(rng, 2000)
	bi := buildBi(t, text)
	pattern := buildText(rng, 50)
	all, err := bi.SMEMs(pattern, 1)
	if err != nil {
		t.Fatal(err)
	}
	long, err := bi.SMEMs(pattern, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(long) > len(all) {
		t.Fatal("filter grew the set")
	}
	for _, s := range long {
		if s.Len() < 12 {
			t.Fatalf("SMEM %+v below min length", s)
		}
	}
	if _, err := bi.SMEMs(pattern, 0); err == nil {
		t.Error("accepted minLen 0")
	}
}

func TestSMEMsExactReadSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	text := buildText(rng, 5000)
	bi := buildBi(t, text)
	pattern := text[700:760]
	smems, err := bi.SMEMs(pattern, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(smems) != 1 || smems[0].Start != 0 || smems[0].End != 60 {
		t.Fatalf("exact read SMEMs = %v", smemIntervals(smems))
	}
}

// FuzzSMEMs drives the bidirectional SMEM search with arbitrary text/pattern
// splits and checks it against the O(n²) brute-force definition. Short
// repetitive texts push many same-sized candidates through the backward pass
// of smemsFromPivot, exercising the size-dedup (`ext.Count() != sizeLast`)
// and the emitted-at-this-edge dedup that the unit tests only reach
// probabilistically.
func FuzzSMEMs(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}, []byte{0, 1, 2}, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0, 0}, []byte{0, 0, 1, 0, 0}, uint8(2))
	f.Add([]byte{1, 2, 1, 2, 1, 2, 1, 2, 3}, []byte{2, 1, 2, 9, 1, 2}, uint8(1))
	f.Fuzz(func(t *testing.T, textB, patB []byte, minLenB uint8) {
		if len(textB) == 0 || len(textB) > 300 || len(patB) == 0 || len(patB) > 80 {
			t.Skip()
		}
		text := make([]uint8, len(textB))
		for i, b := range textB {
			text[i] = uint8(b) % 4
		}
		// Keep out-of-alphabet symbols in the pattern: the search must skip
		// them, and the brute-force reference finds no occurrence through
		// them either.
		pattern := make([]uint8, len(patB))
		for i, b := range patB {
			pattern[i] = uint8(b) % 6
		}
		minLen := 1 + int(minLenB)%4
		bi, err := NewBiIndex(text, 4, rrr.Params{BlockSize: 15, SuperblockFactor: 10})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteSMEMs(text, pattern, minLen)
		got, steps, err := bi.SMEMsSteps(pattern, minLen)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d SMEMs, want %d\ngot:  %v\nwant: %v\ntext: %v\npattern: %v minLen %d",
				len(got), len(want), smemIntervals(got), want, text, pattern, minLen)
		}
		for i := range want {
			if got[i].Start != want[i][0] || got[i].End != want[i][1] {
				t.Fatalf("SMEM %d = [%d,%d), want [%d,%d)", i, got[i].Start, got[i].End, want[i][0], want[i][1])
			}
			if got[i].Rows.Count() != len(naiveOccurrences(text, pattern[got[i].Start:got[i].End])) {
				t.Fatalf("SMEM %d interval size %d, text has %d occurrences",
					i, got[i].Rows.Count(), len(naiveOccurrences(text, pattern[got[i].Start:got[i].End])))
			}
		}
		// The step count is the kernel cycle driver: it must be positive for
		// any in-alphabet pattern and bounded by the quadratic worst case.
		if steps > 2*len(pattern)*len(pattern)+len(pattern) {
			t.Fatalf("%d extension steps for a %d-base pattern", steps, len(pattern))
		}
	})
}

func TestSMEMsInvalidSymbolSkipped(t *testing.T) {
	text := []uint8{0, 1, 2, 3, 0, 1, 2, 3}
	bi := buildBi(t, text)
	pattern := []uint8{0, 1, 9, 2, 3}
	smems, err := bi.SMEMs(pattern, 1)
	if err != nil {
		t.Fatal(err)
	}
	// [0,2) and [3,5) are the expected matches around the bad symbol.
	if len(smems) != 2 || smems[0].End != 2 || smems[1].Start != 3 {
		t.Fatalf("SMEMs around invalid symbol = %v", smemIntervals(smems))
	}
}
