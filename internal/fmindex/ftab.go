package fmindex

import (
	"fmt"
	"sync/atomic"
)

// Ftab is a dense k-mer prefix-lookup table over the 4-symbol DNA alphabet,
// the Bowtie/BWA-style optimisation the paper's backward search lacks: since
// the search consumes the pattern right to left, the first k steps — the
// widest intervals, with the worst rank locality — depend only on the
// pattern's length-k suffix, so they can be replaced by one table lookup.
//
// Every length-k string S maps to the exact Range the plain backward search
// returns when run on S alone. For a living k-mer that is [start(S), end(S)];
// for a k-mer on which the search dies early the entry holds the precise
// empty range produced at the step where it died (death ranges propagate
// down the refinement unchanged, exactly as Count's early exit would return
// them). SearchWithFtab is therefore bit-identical to Count on every input,
// with no re-search fallback: a dead lookup answers immediately, which is
// why unmapped reads get cheaper too, not just mapped ones.
//
// The table is built in O(4^k) total work by interval refinement: the entry
// for sX is one Step (two rank queries) from the entry for X, and dead
// entries are copied, never stepped. Two int32 arrays of 4^k entries each
// cost 8·4^k bytes — 8 MiB at the default k=10.
type Ftab struct {
	k      int
	lo, hi []int32

	// Lookup counters, updated atomically by SearchWithFtab: hits answered
	// from the table, misses where an out-of-alphabet symbol in the suffix
	// forced a plain search, and short reads below k bases.
	hits, misses, short atomic.Uint64
}

// ftab keys cover the fixed DNA alphabet, independent of the index's sigma;
// symbols in [4, 255] cannot be encoded and fall back to the plain search,
// while symbols in [sigma, 4) are handled by the table itself because the
// build uses the same Step semantics (they yield dead entries).
const ftabSigma = 4

// MaxFtabK bounds the table order: 4^12 entries are 134 MiB, already past
// any on-chip budget; larger orders only burn host memory.
const MaxFtabK = 12

// FtabStats is a snapshot of the lookup counters.
type FtabStats struct {
	// Hits are lookups answered from the table (living or dead entry).
	Hits uint64 `json:"hits"`
	// Misses are lookups abandoned because the pattern's length-k suffix
	// contained a symbol outside the 4-symbol DNA alphabet.
	Misses uint64 `json:"misses"`
	// Short are patterns shorter than k, searched plainly.
	Short uint64 `json:"short"`
}

// K returns the table order.
func (f *Ftab) K() int { return f.k }

// Entries returns the number of k-mers covered (4^k).
func (f *Ftab) Entries() int { return len(f.lo) }

// SizeBytes returns the table's footprint — the quantity the FPGA simulator
// charges against its BRAM capacity gate.
func (f *Ftab) SizeBytes() int { return len(f.lo)*4 + len(f.hi)*4 + 16 }

// Stats snapshots the lookup counters.
func (f *Ftab) Stats() FtabStats {
	return FtabStats{Hits: f.hits.Load(), Misses: f.misses.Load(), Short: f.short.Load()}
}

// Lookup returns the stored range for a key in [0, 4^k): the big-endian
// base-4 encoding of the k-mer (first symbol in the highest digit).
func (f *Ftab) Lookup(key int) Range {
	return Range{Start: int(f.lo[key]), End: int(f.hi[key])}
}

// Validate checks every stored range against the index length n, the same
// defensive posture the index deserializer takes: a corrupted table must not
// become out-of-bounds rank queries.
func (f *Ftab) Validate(n int) error {
	if f.k < 1 || f.k > MaxFtabK {
		return fmt.Errorf("fmindex: ftab order %d outside [1,%d]", f.k, MaxFtabK)
	}
	if want := 1 << (2 * f.k); len(f.lo) != want || len(f.hi) != want {
		return fmt.Errorf("fmindex: ftab has %d/%d entries, want %d", len(f.lo), len(f.hi), want)
	}
	for i := range f.lo {
		lo, hi := int(f.lo[i]), int(f.hi[i])
		if lo < 0 || lo > n+1 || hi < -1 || hi > n || hi-lo+1 > n+1 {
			return fmt.Errorf("fmindex: ftab entry %d holds range [%d,%d] outside rows [0,%d]", i, lo, hi, n)
		}
	}
	return nil
}

// BuildFtab constructs the order-k table for the index by interval
// refinement: depth d+1 entries come from one Step on their depth-d parent,
// dead parents propagate their death range to all children without any rank
// work. Total Step calls are bounded by both 4^k and k times the number of
// distinct k-mers in the text, so small references build small-alive tables
// fast even at high k.
func (ix *Index) BuildFtab(k int) (*Ftab, error) {
	if k < 1 || k > MaxFtabK {
		return nil, fmt.Errorf("fmindex: ftab order %d outside [1,%d]", k, MaxFtabK)
	}
	cur := []Range{ix.All()}
	for d := 0; d < k; d++ {
		next := make([]Range, len(cur)*ftabSigma)
		for key, r := range cur {
			if r.Empty() {
				for s := 0; s < ftabSigma; s++ {
					next[s*len(cur)+key] = r
				}
				continue
			}
			for s := 0; s < ftabSigma; s++ {
				next[s*len(cur)+key] = ix.Step(r, uint8(s))
			}
		}
		cur = next
	}
	f := &Ftab{k: k, lo: make([]int32, len(cur)), hi: make([]int32, len(cur))}
	for i, r := range cur {
		f.lo[i] = int32(r.Start)
		f.hi[i] = int32(r.End)
	}
	return f, nil
}

// Ftab returns the attached prefix table, nil if none.
func (ix *Index) Ftab() *Ftab { return ix.ftab }

// SetFtab attaches a prefix table (nil detaches). The table must have been
// built over this index — a foreign table silently answers wrong ranges, so
// callers deserializing one should Validate it first.
func (ix *Index) SetFtab(f *Ftab) { ix.ftab = f }

// SearchWithFtab is Count accelerated by the attached prefix table; without
// one (or for reads shorter than k, or suffixes containing out-of-alphabet
// symbols) it is exactly Count. The returned range is bit-identical to
// Count's on every input — the property the fuzz test pins down.
func (ix *Index) SearchWithFtab(pattern []uint8) Range {
	r, _ := ix.SearchWithFtabSteps(pattern)
	return r
}

// SearchWithFtabSteps is SearchWithFtab reporting the modeled pipeline
// iterations: one for the table lookup (the BRAM LUT access that replaces
// the first k steps) plus one per subsequent Step, matching CountSteps'
// accounting on the fallback paths.
func (ix *Index) SearchWithFtabSteps(pattern []uint8) (Range, int) {
	f := ix.ftab
	if f == nil {
		return ix.CountSteps(pattern)
	}
	m := len(pattern)
	if m < f.k {
		f.short.Add(1)
		return ix.CountSteps(pattern)
	}
	key := 0
	for _, s := range pattern[m-f.k:] {
		if s >= ftabSigma {
			f.misses.Add(1)
			return ix.CountSteps(pattern)
		}
		key = key<<2 | int(s)
	}
	f.hits.Add(1)
	r := Range{Start: int(f.lo[key]), End: int(f.hi[key])}
	steps := 1
	if r.Empty() {
		// The search died inside the suffix; the stored range is the exact
		// empty range Count's early exit would have returned.
		return r, steps
	}
	for i := m - f.k - 1; i >= 0; i-- {
		r = ix.Step(r, pattern[i])
		steps++
		if r.Empty() {
			return r, steps
		}
	}
	return r, steps
}
