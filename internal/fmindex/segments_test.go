package fmindex

import (
	"math/rand"
	"testing"
)

func segmentsIndex(t *testing.T, text []uint8) *Index {
	t.Helper()
	return buildWith(t, text,
		func(d []uint8) (OccProvider, error) { return NewWaveletOcc(d, 4, testParams) },
		fullSAOpts)
}

func TestSegmentsExactReadIsOneSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	text := buildText(rng, 4000)
	ix := segmentsIndex(t, text)
	pattern := text[100:160]
	segs := ix.Segments(pattern)
	if len(segs) != 1 || segs[0].Start != 0 || segs[0].End != 60 {
		t.Fatalf("exact read split into %v", segs)
	}
	if segs[0].Rows.Empty() {
		t.Fatal("segment carries no rows")
	}
}

func TestSegmentsTileThePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	text := buildText(rng, 5000)
	ix := segmentsIndex(t, text)
	for trial := 0; trial < 60; trial++ {
		pattern := buildText(rng, 5+rng.Intn(120))
		segs := ix.Segments(pattern)
		// Segments must cover the pattern contiguously from left to right
		// (zero-length markers account for impossible single symbols).
		cursor := 0
		for _, s := range segs {
			if s.Start != cursor && !(s.Start == s.End && s.Start == cursor) {
				t.Fatalf("segments not contiguous: %v", segs)
			}
			if s.Start == s.End {
				cursor = s.End + 1
			} else {
				cursor = s.End
			}
			// Every non-empty segment must genuinely occur.
			if s.Len() > 0 {
				if got := ix.Count(pattern[s.Start:s.End]); got != s.Rows {
					t.Fatalf("segment rows %v disagree with Count %v", s.Rows, got)
				}
				if s.Rows.Empty() {
					t.Fatalf("non-empty segment with empty rows: %+v", s)
				}
			}
		}
		if cursor != len(pattern) {
			t.Fatalf("segments cover %d of %d pattern symbols", cursor, len(pattern))
		}
	}
}

func TestSegmentsLeftMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	text := buildText(rng, 5000)
	ix := segmentsIndex(t, text)
	for trial := 0; trial < 40; trial++ {
		pattern := buildText(rng, 80)
		for _, s := range ix.Segments(pattern) {
			if s.Len() == 0 || s.Start == 0 {
				continue
			}
			// Extending one symbol left must kill the match.
			if !ix.Count(pattern[s.Start-1 : s.End]).Empty() {
				t.Fatalf("segment [%d,%d) is not left-maximal", s.Start, s.End)
			}
		}
	}
}

func TestSegmentsMutatedReadSplitsAtError(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	text := buildText(rng, 20000)
	ix := segmentsIndex(t, text)
	read := append([]uint8(nil), text[500:580]...)
	read[40] ^= 1 // one substitution near the middle
	segs := ix.Segments(read)
	// The segment ending at the read's end must reach just past the error
	// (backward search crosses position 40 only if the mutated context
	// happens to exist elsewhere, which on 20 kbp random text it won't for
	// long contexts).
	last := segs[len(segs)-1]
	if last.End != 80 {
		t.Fatalf("last segment %+v does not end at read end", last)
	}
	if last.Start > 41 {
		t.Errorf("last segment starts at %d; expected it to reach near the error at 40", last.Start)
	}
	long, ok := ix.LongestSegment(read)
	if !ok || long.Len() < 39 {
		t.Errorf("longest segment %+v implausibly short", long)
	}
}

func TestLongestSegmentNothingMatches(t *testing.T) {
	// Text without symbol 3.
	text := make([]uint8, 300)
	for i := range text {
		text[i] = uint8(i % 3)
	}
	ix := segmentsIndex(t, text)
	if _, ok := ix.LongestSegment([]uint8{3, 3, 3}); ok {
		t.Error("LongestSegment found a match in impossible pattern")
	}
	segs := ix.Segments([]uint8{3, 3})
	if len(segs) != 2 {
		t.Fatalf("expected 2 zero-length markers, got %v", segs)
	}
	for _, s := range segs {
		if s.Len() != 0 || !s.Rows.Empty() {
			t.Errorf("marker segment wrong: %+v", s)
		}
	}
}

func TestSegmentsEmptyPattern(t *testing.T) {
	ix := segmentsIndex(t, []uint8{0, 1, 2, 3})
	if segs := ix.Segments(nil); len(segs) != 0 {
		t.Errorf("empty pattern produced segments: %v", segs)
	}
}
