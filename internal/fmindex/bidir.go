package fmindex

import (
	"fmt"

	"bwaver/internal/bwt"
	"bwaver/internal/rrr"
	"bwaver/internal/suffixarray"
)

// Bidirectional FM-index (Lam et al.'s 2BWT, the index inside BWA-MEM):
// two FM-indexes, one over the text and one over its reverse, holding
// synchronised intervals so a match can be extended in either direction in
// O(sigma) rank operations. It powers super-maximal exact match (SMEM)
// seeding — the modern replacement for the fixed-length seeds the paper's
// seed-and-extend motivation describes — and is the "integrate into real
// sequence analysis pipelines" extension of the paper's future work.
type BiIndex struct {
	fwd, rev *Index
	sigma    int
}

// BiRange is a pair of synchronised intervals: Fwd over the text's rows for
// the current pattern P, Rev over the reversed text's rows for reverse(P).
// Both always have the same size.
type BiRange struct {
	Fwd, Rev Range
}

// Empty reports whether the bidirectional interval is empty.
func (r BiRange) Empty() bool { return r.Fwd.Empty() }

// Count returns the number of occurrences.
func (r BiRange) Count() int { return r.Fwd.Count() }

// NewBiIndex builds bidirectional FM-indexes over text using the paper's
// succinct structure for both directions. The forward index carries the
// full suffix array for locating; the reverse index is count-only.
func NewBiIndex(text []uint8, sigma int, params rrr.Params) (*BiIndex, error) {
	fwd, err := buildDirection(text, sigma, params, true)
	if err != nil {
		return nil, fmt.Errorf("fmindex: forward index: %w", err)
	}
	reversed := make([]uint8, len(text))
	for i, c := range text {
		reversed[len(text)-1-i] = c
	}
	rev, err := buildDirection(reversed, sigma, params, false)
	if err != nil {
		return nil, fmt.Errorf("fmindex: reverse index: %w", err)
	}
	return &BiIndex{fwd: fwd, rev: rev, sigma: sigma}, nil
}

func buildDirection(text []uint8, sigma int, params rrr.Params, withSA bool) (*Index, error) {
	sa, err := suffixarray.Build(text, sigma)
	if err != nil {
		return nil, err
	}
	tr, err := bwt.Transform(text, sa)
	if err != nil {
		return nil, err
	}
	occ, err := NewWaveletOcc(tr.Data, sigma, params)
	if err != nil {
		return nil, err
	}
	opts := Options{}
	if withSA {
		opts.SA = sa
	}
	return New(tr, sigma, occ, opts)
}

// Forward exposes the text-direction index (it has the suffix array).
func (bi *BiIndex) Forward() *Index { return bi.fwd }

// Len returns the text length.
func (bi *BiIndex) Len() int { return bi.fwd.Len() }

// All returns the interval of the empty pattern.
func (bi *BiIndex) All() BiRange {
	return BiRange{Fwd: bi.fwd.All(), Rev: bi.rev.All()}
}

// ExtendLeft extends the pattern P to aP. The forward interval follows the
// ordinary backward-search step; the reverse interval shifts by the counts
// of the siblings that sort before a: within the reverse interval (all rows
// prefixed by reverse(P)), sub-intervals are ordered by the symbol that
// follows reverse(P), i.e. by the symbol prepended to P — sentinel first,
// then the alphabet.
func (bi *BiIndex) ExtendLeft(r BiRange, a uint8) BiRange {
	return extendLeftOn(bi.fwd, bi.sigma, r, a)
}

// ExtendRight extends the pattern P to Pa, the mirror image of ExtendLeft
// with the two directions swapped: prepending a to reverse(P) on the
// reverse index yields reverse(Pa).
func (bi *BiIndex) ExtendRight(r BiRange, a uint8) BiRange {
	m := extendLeftOn(bi.rev, bi.sigma, BiRange{Fwd: r.Rev, Rev: r.Fwd}, a)
	return BiRange{Fwd: m.Rev, Rev: m.Fwd}
}

var emptyBiRange = BiRange{Fwd: Range{Start: 1, End: 0}, Rev: Range{Start: 1, End: 0}}

// extendLeftOn performs one left extension where stepIx indexes the
// direction being stepped and r.Fwd is its interval.
func extendLeftOn(stepIx *Index, sigma int, r BiRange, a uint8) BiRange {
	if int(a) >= sigma || r.Empty() {
		return emptyBiRange
	}
	// counts per prepended symbol b = occurrences of bP, resolved for the
	// whole alphabet at once: StepAll shares the endpoint rank traversals
	// across symbols, the dominant saving of the seeding hot loop.
	var stepped [maxStepAllSigma]Range
	var steppedSlice []Range
	if sigma <= maxStepAllSigma {
		steppedSlice = stepped[:sigma]
	} else {
		steppedSlice = make([]Range, sigma)
	}
	stepIx.StepAll(r.Fwd, steppedSlice)
	var smaller, total, cA int
	var newFwd Range
	for b := 0; b < sigma; b++ {
		c := steppedSlice[b].Count()
		total += c
		if b < int(a) {
			smaller += c
		}
		if b == int(a) {
			cA = c
			newFwd = steppedSlice[b]
		}
	}
	if cA == 0 {
		return emptyBiRange
	}
	// Rows of the mirror interval that end right after the shared prefix
	// (the sentinel extension) sort before every symbol extension.
	sentinel := r.Count() - total
	newRevStart := r.Rev.Start + sentinel + smaller
	return BiRange{
		Fwd: newFwd,
		Rev: Range{Start: newRevStart, End: newRevStart + cA - 1},
	}
}

// Count runs a full bidirectional search for pattern (left extensions), a
// correctness cross-check against the plain index.
func (bi *BiIndex) Count(pattern []uint8) BiRange {
	r := bi.All()
	for i := len(pattern) - 1; i >= 0; i-- {
		r = bi.ExtendLeft(r, pattern[i])
		if r.Empty() {
			return r
		}
	}
	return r
}
