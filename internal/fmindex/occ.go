package fmindex

import (
	"fmt"
	"math/bits"

	"bwaver/internal/rrr"
	"bwaver/internal/wavelet"
)

// OccProvider answers Occ queries over the compact BWT data (the transform
// with the sentinel slot removed): Occ(sym, i) is the number of occurrences
// of sym in Data[0, i). The Index layer translates full-transform positions
// to compact positions around the sentinel.
//
// Three providers implement the trade-off space the paper discusses:
// the succinct wavelet/RRR structure (BWaveR's), a flat per-position table
// (fast, enormous), and a checkpointed table with popcount recounting (the
// re-sampling approach of CPU tools like Bowtie2, used by internal/baseline).
type OccProvider interface {
	Occ(sym uint8, i int) int
	Len() int
	Sigma() int
	SizeBytes() int
	Name() string
}

// OccAller is the optional fast path for whole-alphabet queries:
// OccAll(i, counts) fills counts[0:sigma] with Occ(sym, i) for every symbol
// in one pass. The wavelet provider answers it with a single tree traversal
// (sigma-1 bit-vector ranks instead of ~2·(sigma-1) via per-symbol Rank),
// which the bidirectional extension step — the seeding hot loop — exploits.
type OccAller interface {
	OccAll(i int, counts []int)
}

// WaveletOcc adapts a wavelet tree (the paper's structure) to OccProvider.
type WaveletOcc struct {
	Tree *wavelet.Tree
}

// NewWaveletOcc builds the paper's succinct Occ structure over data with the
// given RRR parameters. Pass a nil backend override through
// NewWaveletOccBackend for the plain-bit-vector ablation.
func NewWaveletOcc(data []uint8, sigma int, params rrr.Params) (*WaveletOcc, error) {
	return NewWaveletOccBackend(data, sigma, wavelet.RRRBackend(params))
}

// NewWaveletOccBackend builds a wavelet Occ with an explicit node backend.
func NewWaveletOccBackend(data []uint8, sigma int, backend wavelet.Backend) (*WaveletOcc, error) {
	t, err := wavelet.New(data, sigma, backend)
	if err != nil {
		return nil, err
	}
	return &WaveletOcc{Tree: t}, nil
}

func (w *WaveletOcc) Occ(sym uint8, i int) int { return w.Tree.Rank(sym, i) }

// OccAll answers the whole-alphabet query with one tree traversal.
func (w *WaveletOcc) OccAll(i int, counts []int) { w.Tree.RankAll(i, counts) }
func (w *WaveletOcc) Len() int                 { return w.Tree.Len() }
func (w *WaveletOcc) Sigma() int               { return w.Tree.Sigma() }
func (w *WaveletOcc) SizeBytes() int           { return w.Tree.SizeBytes() + w.Tree.SharedSizeBytes() }
func (w *WaveletOcc) Name() string             { return "wavelet/" + w.Tree.BackendName() }

// FlatOcc stores Occ(sym, i) for every position — O(1) queries at
// 4·sigma bytes per symbol. Only sensible for small references and tests;
// it is the "unable to take advantage of a compressed index" extreme the
// paper contrasts against.
type FlatOcc struct {
	sigma int
	n     int
	table [][]int32 // table[sym][i]
}

// NewFlatOcc builds the flat table.
func NewFlatOcc(data []uint8, sigma int) (*FlatOcc, error) {
	f := &FlatOcc{sigma: sigma, n: len(data), table: make([][]int32, sigma)}
	for s := range f.table {
		f.table[s] = make([]int32, len(data)+1)
	}
	for i, c := range data {
		if int(c) >= sigma {
			return nil, fmt.Errorf("fmindex: symbol %d outside alphabet [0,%d)", c, sigma)
		}
		for s := 0; s < sigma; s++ {
			f.table[s][i+1] = f.table[s][i]
		}
		f.table[c][i+1]++
	}
	return f, nil
}

func (f *FlatOcc) Occ(sym uint8, i int) int { return int(f.table[sym][i]) }
func (f *FlatOcc) Len() int                 { return f.n }
func (f *FlatOcc) Sigma() int               { return f.sigma }
func (f *FlatOcc) SizeBytes() int           { return f.sigma * (f.n + 1) * 4 }
func (f *FlatOcc) Name() string             { return "flat" }

// CheckpointOcc is the classic re-sampled FM-index layout used by CPU
// mappers (BWA/Bowtie2 family): the BWT kept as 2-bit packed symbols with
// absolute counts checkpointed every CheckpointInterval symbols, and queries
// resolved by one checkpoint load plus popcount scans of at most
// CheckpointInterval/32 words. Restricted to sigma = 4 (DNA), as those
// tools are.
type CheckpointOcc struct {
	n      int
	words  []uint64   // 2-bit packed symbols, 32 per word
	checks [][4]int32 // absolute counts at every interval boundary
}

// CheckpointInterval is the sampling distance in symbols; 128 symbols = 4
// words per scan, mirroring the cache-line-sized blocks of Bowtie2.
const CheckpointInterval = 128

// NewCheckpointOcc builds the checkpointed structure over DNA data.
func NewCheckpointOcc(data []uint8) (*CheckpointOcc, error) {
	c := &CheckpointOcc{
		n:      len(data),
		words:  make([]uint64, (len(data)+31)/32),
		checks: make([][4]int32, len(data)/CheckpointInterval+1),
	}
	var counts [4]int32
	for i, s := range data {
		if s >= 4 {
			return nil, fmt.Errorf("fmindex: checkpoint occ requires DNA symbols, got %d", s)
		}
		if i%CheckpointInterval == 0 {
			c.checks[i/CheckpointInterval] = counts
		}
		c.words[i/32] |= uint64(s) << uint(i%32*2)
		counts[s]++
	}
	return c, nil
}

// occWord counts occurrences of sym among the first k symbols of word w.
func occWord(w uint64, sym uint8, k int) int {
	// Build a mask with bit 2j set iff symbol j == sym, then popcount.
	const low = 0x5555555555555555 // 01 repeated
	hi := w >> 1 & low
	lo := w & low
	var m uint64
	switch sym {
	case 0:
		m = ^hi & ^lo & low
	case 1:
		m = ^hi & lo & low
	case 2:
		m = hi & ^lo & low
	default:
		m = hi & lo & low
	}
	if k < 32 {
		m &= 1<<uint(2*k) - 1
	}
	return bits.OnesCount64(m)
}

func (c *CheckpointOcc) Occ(sym uint8, i int) int {
	cp := i / CheckpointInterval
	count := int(c.checks[cp][sym])
	start := cp * CheckpointInterval
	for w := start / 32; w*32 < i; w++ {
		k := i - w*32
		if k > 32 {
			k = 32
		}
		count += occWord(c.words[w], sym, k)
	}
	return count
}

func (c *CheckpointOcc) Len() int   { return c.n }
func (c *CheckpointOcc) Sigma() int { return 4 }
func (c *CheckpointOcc) SizeBytes() int {
	return len(c.words)*8 + len(c.checks)*16
}
func (c *CheckpointOcc) Name() string { return "checkpoint" }

// Symbol returns the i-th BWT symbol, needed for LF walks during locate.
func (c *CheckpointOcc) Symbol(i int) uint8 {
	return uint8(c.words[i/32] >> uint(i%32*2) & 3)
}
