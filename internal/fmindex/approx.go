package fmindex

import "fmt"

// Approximate (k-mismatch) search. The paper lists extending BWaveR "to
// approximate string matching" as future work (§V) and its related work
// (Fernandez et al., Arram et al.) describes FM-index kernels supporting
// one and two substitutions; this file implements that extension: a
// branching backward search that explores substituted symbols while the
// mismatch budget lasts. Time grows exponentially with the budget — the
// reason the paper's related work caps hardware designs at two mismatches —
// so callers should keep k small.

// ApproxMatch is one match range at a specific mismatch count.
type ApproxMatch struct {
	Range      Range
	Mismatches int
}

// MaxMismatchBudget bounds CountApprox's budget; beyond two substitutions
// the branching search degenerates, matching the hardware designs' limits.
const MaxMismatchBudget = 4

// CountApprox returns the row ranges of every string within maxMismatches
// substitutions of pattern that occurs in the text (insertions/deletions are
// not explored). Ranges of distinct generated strings are disjoint, and the
// exact-match range (if any) is reported with Mismatches == 0.
func (ix *Index) CountApprox(pattern []uint8, maxMismatches int) ([]ApproxMatch, error) {
	matches, _, err := ix.CountApproxSteps(pattern, maxMismatches)
	return matches, err
}

// CountApproxSteps is CountApprox plus the number of backward-search steps
// the branching search executed, which the FPGA simulator charges cycles
// for.
func (ix *Index) CountApproxSteps(pattern []uint8, maxMismatches int) ([]ApproxMatch, int, error) {
	if maxMismatches < 0 || maxMismatches > MaxMismatchBudget {
		return nil, 0, fmt.Errorf("fmindex: mismatch budget %d outside [0,%d]", maxMismatches, MaxMismatchBudget)
	}
	for _, s := range pattern {
		if int(s) >= ix.sigma {
			return nil, 0, fmt.Errorf("fmindex: pattern symbol %d outside alphabet [0,%d)", s, ix.sigma)
		}
	}
	var (
		matches []ApproxMatch
		steps   int
	)
	var dfs func(i int, r Range, mm int)
	dfs = func(i int, r Range, mm int) {
		if i < 0 {
			matches = append(matches, ApproxMatch{Range: r, Mismatches: mm})
			return
		}
		for sym := uint8(0); int(sym) < ix.sigma; sym++ {
			cost := 0
			if sym != pattern[i] {
				cost = 1
			}
			if mm+cost > maxMismatches {
				continue
			}
			steps++
			next := ix.Step(r, sym)
			if next.Empty() {
				continue
			}
			dfs(i-1, next, mm+cost)
		}
	}
	dfs(len(pattern)-1, ix.All(), 0)
	return matches, steps, nil
}

// BestApprox reduces a CountApprox result to the matches at the lowest
// mismatch count, the "best stratum" reporting mode short-read mappers use.
func BestApprox(matches []ApproxMatch) []ApproxMatch {
	best := -1
	for _, m := range matches {
		if best == -1 || m.Mismatches < best {
			best = m.Mismatches
		}
	}
	if best == -1 {
		return nil
	}
	out := matches[:0:0]
	for _, m := range matches {
		if m.Mismatches == best {
			out = append(out, m)
		}
	}
	return out
}

// TotalOccurrences sums the row counts of a match set.
func TotalOccurrences(matches []ApproxMatch) int {
	total := 0
	for _, m := range matches {
		total += m.Range.Count()
	}
	return total
}
