package fmindex

import (
	"math/rand"
	"testing"

	"bwaver/internal/rrr"
)

// runText builds BWT-like data: runs of equal symbols.
func runText(rng *rand.Rand, n, meanRun int) []uint8 {
	out := make([]uint8, n)
	for i := 0; i < n; {
		sym := uint8(rng.Intn(4))
		runLen := 1 + rng.Intn(2*meanRun)
		for j := 0; j < runLen && i < n; j++ {
			out[i] = sym
			i++
		}
	}
	return out
}

var rlfmParams = rrr.Params{BlockSize: 15, SuperblockFactor: 10}

func TestRLFMOccMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, meanRun := range []int{1, 3, 25} {
		for _, n := range []int{1, 2, 50, 3000} {
			data := runText(rng, n, meanRun)
			occ, err := NewRLFMOcc(data, 4, rlfmParams)
			if err != nil {
				t.Fatal(err)
			}
			if occ.Len() != n {
				t.Fatalf("Len=%d want %d", occ.Len(), n)
			}
			for i := 0; i <= n; i += 1 + n/500 {
				for sym := uint8(0); sym < 4; sym++ {
					want := 0
					for _, s := range data[:i] {
						if s == sym {
							want++
						}
					}
					if got := occ.Occ(sym, i); got != want {
						t.Fatalf("meanRun=%d n=%d: Occ(%d,%d)=%d, want %d", meanRun, n, sym, i, got, want)
					}
				}
			}
			for i := 0; i < n; i++ {
				if occ.Symbol(i) != data[i] {
					t.Fatalf("Symbol(%d)=%d, want %d", i, occ.Symbol(i), data[i])
				}
			}
		}
	}
}

func TestRLFMValidation(t *testing.T) {
	if _, err := NewRLFMOcc([]uint8{0, 1}, 1, rlfmParams); err == nil {
		t.Error("accepted sigma 1")
	}
	if _, err := NewRLFMOcc([]uint8{0, 9}, 4, rlfmParams); err == nil {
		t.Error("accepted out-of-alphabet symbol")
	}
	if _, err := NewRLFMOcc([]uint8{0, 1}, 4, rrr.Params{BlockSize: 99}); err == nil {
		t.Error("accepted invalid rrr params")
	}
}

func TestRLFMRunCount(t *testing.T) {
	occ, err := NewRLFMOcc([]uint8{0, 0, 1, 1, 1, 2, 0}, 4, rlfmParams)
	if err != nil {
		t.Fatal(err)
	}
	if occ.Runs() != 4 {
		t.Errorf("Runs=%d, want 4", occ.Runs())
	}
}

// TestRLFMIndexEndToEnd plugs the RLFM provider into a full FM-index and
// checks count+locate against the naive scan, including LF walks through
// the generic Symbol interface.
func TestRLFMIndexEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	// A repetitive text gives the BWT real runs.
	pattern := buildText(rng, 37)
	var text []uint8
	for len(text) < 3000 {
		text = append(text, pattern...)
		text = append(text, buildText(rng, 11)...)
	}
	ix := buildWith(t, text,
		func(d []uint8) (OccProvider, error) { return NewRLFMOcc(d, 4, rlfmParams) },
		sampledOpts(8)) // sampled SA exercises LF via Symbol()
	for trial := 0; trial < 60; trial++ {
		l := 4 + rng.Intn(20)
		s := rng.Intn(len(text) - l)
		pat := text[s : s+l]
		want := naiveOccurrences(text, pat)
		r := ix.Count(pat)
		if r.Count() != len(want) {
			t.Fatalf("Count=%d, want %d", r.Count(), len(want))
		}
		got, err := ix.Locate(r)
		if err != nil {
			t.Fatal(err)
		}
		if !sortedEqual(got, want) {
			t.Fatalf("locate mismatch for %v", pat)
		}
	}
}

// TestRLFMSmallerOnRunRichData: on run-rich BWTs the RLFM structure beats
// even the wavelet/RRR encoding, because its size scales with runs, not
// with positions.
func TestRLFMSmallerOnRunRichData(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	data := runText(rng, 500000, 120)
	rlfm, err := NewRLFMOcc(data, 4, rrr.Params{BlockSize: 15, SuperblockFactor: 100})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := NewWaveletOcc(data, 4, rrr.Params{BlockSize: 15, SuperblockFactor: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rlfm.SizeBytes() >= wl.SizeBytes() {
		t.Errorf("rlfm %d B not smaller than wavelet/rrr %d B on run-rich data",
			rlfm.SizeBytes(), wl.SizeBytes())
	}
}
