package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postJob submits an upload and returns the raw response (no redirect
// following), for tests that care about rejections.
func postJob(t *testing.T, ts *httptest.Server, refFasta, readsFastq []byte) *http.Response {
	t.Helper()
	body, ctype := buildUpload(t, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Post(ts.URL+"/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeRejection drains a rejection response, asserting the structured
// envelope: JSON error + reason + retry hint, and a Retry-After header.
func decodeRejection(t *testing.T, resp *http.Response) (reason string, retrySecs int) {
	t.Helper()
	defer resp.Body.Close()
	var payload struct {
		Error      string `json:"error"`
		Reason     string `json:"reason"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("rejection body is not the structured envelope: %v", err)
	}
	if payload.Error == "" {
		t.Error("rejection has no error message")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rejection has no Retry-After header")
	}
	return payload.Reason, payload.RetryAfter
}

// With one slot and a one-deep queue, the third concurrent submission is shed
// with a structured queue_full 503 — and cancelling the queued job frees the
// slot immediately for a new submission.
func TestQueueFullShedsAndCancelFrees(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := NewWithConfig(Config{MaxConcurrentJobs: 1, MaxQueue: 1})
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.testHookBeforeRun = func(j *Job, ctx context.Context) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	// Job 1 occupies the slot; job 2 fills the queue.
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	<-entered
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})

	resp := postJob(t, ts, refFasta, readsFastq)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-queue submit returned %d, want 503", resp.StatusCode)
	}
	reason, retry := decodeRejection(t, resp)
	if reason != reasonQueueFull {
		t.Errorf("rejection reason %q, want %q", reason, reasonQueueFull)
	}
	if retry < 1 {
		t.Errorf("retry_after_seconds = %d, want >= 1", retry)
	}

	// Cancel the queued job: the queue slot must free without waiting for
	// the running job, so the next submission is admitted.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/jobs/2", nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, cresp.Body)
	cresp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j := getJobJSON(t, ts, 2); j.State == string(StateCanceled) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued job not canceled after 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp = postJob(t, ts, refFasta, readsFastq)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Errorf("post-cancel submit returned %d, want 303", resp.StatusCode)
	}

	st := getStats(t, ts)
	if st.Admission.Rejected[reasonQueueFull] != 1 {
		t.Errorf("rejected[queue_full] = %d, want 1", st.Admission.Rejected[reasonQueueFull])
	}
	if st.Admission.MaxQueue != 1 {
		t.Errorf("stats max_queue = %d, want 1", st.Admission.MaxQueue)
	}
}

// A client past its token bucket gets a structured 429 with a retry hint.
// The rate is deliberately glacial (one token per 10 s) so no amount of test
// slowness can refill the bucket mid-test; refill behavior itself is covered
// by TestRateLimiterBucketMath with an injected clock.
func TestRateLimit429(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := NewWithConfig(Config{RatePerSec: 0.1, RateBurst: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts, refFasta, readsFastq)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("first submit returned %d, want 303", resp.StatusCode)
	}
	// The burst of one is spent; the repeat must be limited.
	resp = postJob(t, ts, refFasta, readsFastq)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit returned %d, want 429", resp.StatusCode)
	}
	reason, retry := decodeRejection(t, resp)
	if reason != reasonRateLimited {
		t.Errorf("rejection reason %q, want %q", reason, reasonRateLimited)
	}
	if retry < 1 {
		t.Errorf("retry_after_seconds = %d, want >= 1 at 0.1 tokens/s", retry)
	}
	if n := getStats(t, ts).Admission.Rejected[reasonRateLimited]; n < 1 {
		t.Errorf("rejected[rate_limited] = %d, want >= 1", n)
	}
	s.Wait()
}

// The token bucket refills proportionally and prunes idle clients.
func TestRateLimiterBucketMath(t *testing.T) {
	rl := newRateLimiter(2, 2)
	now := time.Now()
	if ok, _ := rl.allow("a", now); !ok {
		t.Fatal("fresh bucket denied")
	}
	if ok, _ := rl.allow("a", now); !ok {
		t.Fatal("burst of 2 denied second token")
	}
	ok, retry := rl.allow("a", now)
	if ok {
		t.Fatal("empty bucket allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retry hint %v, want (0, 1s] at 2 tokens/s", retry)
	}
	if ok, _ := rl.allow("a", now.Add(time.Second)); !ok {
		t.Error("bucket did not refill after 1s at 2/s")
	}
	if rl := newRateLimiter(0, 5); rl != nil {
		t.Error("zero rate should disable the limiter")
	}
	var nilRL *rateLimiter
	if ok, _ := nilRL.allow("x", now); !ok {
		t.Error("nil limiter must admit everything")
	}
}

// While draining, /api/health reports draining, submissions and the demo get
// 503 with reason draining, and status/results endpoints keep working.
func TestDrainingRejectsButServes(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	s.BeginDrain()

	resp := postJob(t, ts, refFasta, readsFastq)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit returned %d, want 503", resp.StatusCode)
	}
	if reason, _ := decodeRejection(t, resp); reason != reasonDraining {
		t.Errorf("rejection reason %q, want %q", reason, reasonDraining)
	}
	dresp, err := http.Get(ts.URL + "/demo")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining demo returned %d, want 503", dresp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "draining" || !health.Draining {
		t.Errorf("health = %+v, want status draining", health)
	}

	// Existing jobs stay reachable.
	if j := getJobJSON(t, ts, 1); j.State != string(StateDone) {
		t.Errorf("job 1 state %q while draining, want done", j.State)
	}
	if !getStats(t, ts).Admission.Draining {
		t.Error("stats do not report draining")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with no jobs in flight: %v", err)
	}
}

// Cancelling a terminal job is a 409 that names the state it already reached.
func TestCancelTerminalCarriesState(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/jobs/1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of done job returned %d, want 409", resp.StatusCode)
	}
	var payload struct {
		Error string `json:"error"`
		ID    int    `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.State != string(StateDone) || payload.ID != 1 {
		t.Errorf("409 payload %+v, want state done for job 1", payload)
	}
}
