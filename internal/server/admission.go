package server

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"bwaver/internal/qc"
)

// Admission control and graceful drain. Job creation (POST /jobs, GET /demo)
// passes three gates before a Job exists: the server must not be draining, a
// per-client token bucket must have a token, and the queue of jobs waiting
// for a pipeline slot must be below -max-queue. Rejections are structured
// JSON (429 for rate limiting, 503 for overload and drain) with a
// Retry-After header, counted per reason in /api/stats and
// bwaver_admission_rejected_total. Drain itself is the shutdown half:
// BeginDrain flips the server to reject-new-work mode while in-flight jobs
// finish, and Drain waits for them with a caller-supplied deadline.

// Admission rejection reasons, used as the metric/stats label.
const (
	reasonDraining    = "draining"
	reasonQueueFull   = "queue_full"
	reasonRateLimited = "rate_limited"
)

// DefaultMaxQueue bounds jobs waiting for a pipeline slot.
const DefaultMaxQueue = 64

// drainRetryAfter is the Retry-After hint on drain rejections: the client
// should find the replacement instance after the orchestrator's handover.
const drainRetryAfter = 10 * time.Second

// queueFullRetryAfter is the Retry-After hint on queue-full rejections.
const queueFullRetryAfter = 5 * time.Second

// admissionError is a structured rejection.
type admissionError struct {
	status     int
	reason     string
	msg        string
	retryAfter time.Duration
}

// writeAdmissionError renders the rejection as the /api error envelope plus
// machine-readable reason and retry hint, with the matching Retry-After
// header for plain HTTP clients.
func writeAdmissionError(w http.ResponseWriter, ae *admissionError) {
	secs := int(math.Ceil(ae.retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, ae.status, map[string]any{
		"error":               ae.msg,
		"reason":              ae.reason,
		"retry_after_seconds": secs,
	})
}

// tokenBucket is one client's rate-limit state.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token-bucket limiter keyed by client IP.
// Buckets refill at rate tokens/second up to burst; an idle client's bucket
// is pruned once the map grows past pruneAbove entries.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*tokenBucket
}

// pruneAbove bounds the limiter's memory: past this many tracked clients,
// buckets idle long enough to have fully refilled are dropped (a full bucket
// is indistinguishable from a brand-new one).
const pruneAbove = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*tokenBucket{}}
}

// allow takes one token for key, reporting how long the client should wait
// when none is available. A nil limiter admits everything.
func (rl *rateLimiter) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if rl == nil {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[key]
	if b == nil {
		if len(rl.buckets) >= pruneAbove {
			rl.pruneLocked(now)
		}
		b = &tokenBucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
}

// pruneLocked drops buckets whose elapsed idle time has refilled them.
func (rl *rateLimiter) pruneLocked(now time.Time) {
	for key, b := range rl.buckets {
		if now.Sub(b.last).Seconds()*rl.rate >= rl.burst {
			delete(rl.buckets, key)
		}
	}
}

// parseTrustedProxies parses the -trusted-proxies flag: a comma-separated
// list of CIDRs (bare IPs are accepted as /32 or /128).
func parseTrustedProxies(spec string) ([]*net.IPNet, error) {
	var nets []*net.IPNet
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "/") {
			ip := net.ParseIP(part)
			if ip == nil {
				return nil, fmt.Errorf("bad trusted proxy %q", part)
			}
			bits := 32
			if ip.To4() == nil {
				bits = 128
			}
			part = fmt.Sprintf("%s/%d", ip, bits)
		}
		_, n, err := net.ParseCIDR(part)
		if err != nil {
			return nil, fmt.Errorf("bad trusted proxy %q: %w", part, err)
		}
		nets = append(nets, n)
	}
	return nets, nil
}

func ipTrusted(nets []*net.IPNet, ip net.IP) bool {
	for _, n := range nets {
		if n.Contains(ip) {
			return true
		}
	}
	return false
}

// clientKey identifies a client for rate limiting. By default it is the
// connection's IP: X-Forwarded-For is attacker-controlled and is never
// trusted unless -trusted-proxies says the peer is ours. When the peer IS a
// trusted proxy, the chain is walked right to left past every trusted hop and
// the rightmost untrusted address is the client — rightmost because each hop
// appends, so everything left of it is whatever the client claimed.
func (s *Server) clientKey(r *http.Request) string {
	peer := r.RemoteAddr
	if host, _, err := net.SplitHostPort(peer); err == nil {
		peer = host
	}
	if len(s.trustedProxies) == 0 {
		return peer
	}
	ip := net.ParseIP(peer)
	if ip == nil || !ipTrusted(s.trustedProxies, ip) {
		return peer
	}
	hops := strings.Split(r.Header.Get("X-Forwarded-For"), ",")
	for i := len(hops) - 1; i >= 0; i-- {
		hop := strings.TrimSpace(hops[i])
		if hop == "" {
			continue
		}
		hopIP := net.ParseIP(hop)
		if hopIP == nil {
			// Garbage in the chain: fall back to the direct peer rather than
			// letting a client mint arbitrary bucket keys.
			return peer
		}
		if !ipTrusted(s.trustedProxies, hopIP) {
			return hop
		}
	}
	// Every hop was one of our proxies (or the header was empty): key on the
	// direct peer.
	return peer
}

// preAdmit runs the cheap gates — drain state and rate limit — before the
// handler touches the request body, so a shed request costs no upload
// parsing. The queue-depth gate runs later, atomically with job creation.
func (s *Server) preAdmit(r *http.Request) *admissionError {
	if s.Draining() {
		return &admissionError{
			status:     http.StatusServiceUnavailable,
			reason:     reasonDraining,
			msg:        "server is draining; not accepting new jobs",
			retryAfter: drainRetryAfter,
		}
	}
	if ok, retry := s.limiter.allow(s.clientKey(r), time.Now()); !ok {
		return &admissionError{
			status:     http.StatusTooManyRequests,
			reason:     reasonRateLimited,
			msg:        "client rate limit exceeded",
			retryAfter: retry,
		}
	}
	return nil
}

// holdsSlot reports whether a state occupies an admission queue slot: jobs
// waiting for a pipeline slot, and chunked jobs still feeding their payload
// (a half-uploaded job is queued work the server has committed to).
func holdsSlot(st JobState) bool {
	return st == StateQueued || st == StateUploading
}

// setJobStateLocked is the single place job state changes, so the queued
// counter that backs the -max-queue gate stays exact without scanning the
// jobs map; s.mu must be held.
func (s *Server) setJobStateLocked(job *Job, st JobState) {
	if holdsSlot(job.State) {
		s.queuedCount--
	}
	job.State = st
	if holdsSlot(st) {
		s.queuedCount++
	}
}

// jobSpec is everything admission needs to mint a job: the pipeline
// parameters plus the cross-process identity (idempotency key, request id)
// and the effective deadline budget resolved by effectiveTimeout.
type jobSpec struct {
	Backend    string
	Mode       string
	B, SF      int
	Mismatches int
	QC         qc.Policy
	RefName    string
	RefLength  int
	Reads      int
	IdemKey    string
	RequestID  string
	Timeout    time.Duration
}

// admitJob creates a job if the server is accepting work and the admission
// queue has room; the check and the creation share one critical section, so
// concurrent submits cannot overshoot -max-queue. The queue gate is the O(1)
// queuedCount counter maintained by setJobStateLocked — admission used to
// scan the whole retained-jobs map (terminal jobs included) per submit.
//
// spec.IdemKey, when non-empty, is reserved inside the same critical section:
// a concurrent duplicate submission gets the already-admitted job back
// (existing=true) instead of a second run. initial is StateQueued for buffered
// submissions (payload already in hand) or StateUploading for chunked ones;
// only queued admissions join the drain WaitGroup — uploading jobs hold a
// queue slot but must not block Drain, which would otherwise wait on a client
// that walked away.
func (s *Server) admitJob(spec jobSpec, initial JobState) (job *Job, existing bool, ae *admissionError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, &admissionError{
			status:     http.StatusServiceUnavailable,
			reason:     reasonDraining,
			msg:        "server is draining; not accepting new jobs",
			retryAfter: drainRetryAfter,
		}
	}
	if spec.IdemKey != "" {
		if id, ok := s.idemKeys[spec.IdemKey]; ok {
			if j := s.jobs[id]; j != nil {
				return j, true, nil
			}
		}
	}
	if s.cfg.MaxQueue > 0 && s.queuedCount >= s.cfg.MaxQueue {
		return nil, false, &admissionError{
			status:     http.StatusServiceUnavailable,
			reason:     reasonQueueFull,
			msg:        fmt.Sprintf("admission queue full (%d jobs waiting)", s.queuedCount),
			retryAfter: queueFullRetryAfter,
		}
	}
	job = &Job{
		ID: s.nextID, Backend: spec.Backend, Mode: spec.Mode, B: spec.B, SF: spec.SF,
		Mismatches: spec.Mismatches, QC: spec.QC, IdemKey: spec.IdemKey, RequestID: spec.RequestID,
		timeout: spec.Timeout,
		RefName: spec.RefName, RefLength: spec.RefLength, Reads: spec.Reads, Created: time.Now(),
	}
	s.setJobStateLocked(job, initial)
	s.nextID++
	s.jobs[job.ID] = job
	if spec.IdemKey != "" {
		s.idemKeys[spec.IdemKey] = job.ID
	}
	if initial == StateUploading {
		job.upload = &uploadState{lastActivity: job.Created}
	} else {
		// Cover the admit→launch window in the drain WaitGroup: without this
		// a Drain racing a submit could observe zero in-flight jobs while an
		// admitted job is still being journaled. acceptAndLaunch drops it
		// once launch holds its own reference.
		s.wg.Add(1)
	}
	return job, false, nil
}

// releaseIdemKeyLocked drops a key reservation (admission failed after the
// fact, or the job is being evicted); s.mu must be held.
func (s *Server) releaseIdemKeyLocked(job *Job) {
	if job.IdemKey != "" && s.idemKeys[job.IdemKey] == job.ID {
		delete(s.idemKeys, job.IdemKey)
	}
}

// rejectAdmission records and renders a rejection.
func (s *Server) rejectAdmission(w http.ResponseWriter, ae *admissionError) {
	s.mu.Lock()
	s.admissionRejected[ae.reason]++
	s.mu.Unlock()
	s.mAdmissionRejected.With(ae.reason).Inc()
	writeAdmissionError(w, ae)
}

// BeginDrain stops job admission: new submissions are rejected with 503 and
// /api/health reports draining. In-flight and queued jobs keep running —
// pair with Drain to wait for them. Safe to call more than once.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.log.Info("drain started; rejecting new jobs")
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain begins draining (if not already) and waits for every launched job to
// reach a terminal state, or for ctx. On timeout the remaining jobs are left
// running — their journal records are still accepted/running, so the next
// start re-queues them; the caller decides whether to exit anyway.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete; all jobs terminal")
		return nil
	case <-ctx.Done():
		s.log.Warn("drain timed out; unfinished jobs remain journaled", "err", ctx.Err())
		return ctx.Err()
	}
}
