package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fastx"
	"bwaver/internal/readsim"
)

// buildUpload assembles a multipart request body with the given files and
// form fields.
func buildUpload(t *testing.T, fields map[string]string, files map[string][]byte) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for k, v := range fields {
		if err := mw.WriteField(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for name, content := range files {
		fw, err := mw.CreateFormFile(name, name+".txt")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(content); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return &buf, mw.FormDataContentType()
}

func testData(t *testing.T) (refFasta, readsFastq []byte, reads []readsim.Read) {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 5000, Seed: 9, RepeatFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 50, Length: 40, MappingRatio: 0.6, RevCompFraction: 0.5, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	fw := fastx.NewWriter(&fb, fastx.FASTA, false)
	if err := fw.Write(&fastx.Record{ID: "testref", Seq: []byte(ref.String())}); err != nil {
		t.Fatal(err)
	}
	fw.Close()
	var qb bytes.Buffer
	qw := fastx.NewWriter(&qb, fastx.FASTQ, false)
	for _, r := range sim {
		if err := qw.Write(&fastx.Record{ID: r.ID, Seq: []byte(r.Seq.String())}); err != nil {
			t.Fatal(err)
		}
	}
	qw.Close()
	return fb.Bytes(), qb.Bytes(), sim
}

func submitJob(t *testing.T, s *Server, ts *httptest.Server, fields map[string]string, files map[string][]byte) string {
	t.Helper()
	body, ctype := buildUpload(t, fields, files)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Post(ts.URL+"/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit returned %d: %s", resp.StatusCode, b)
	}
	return resp.Header.Get("Location")
}

func TestFullPipelineViaHTTP(t *testing.T) {
	for _, backend := range []string{"cpu", "fpga"} {
		t.Run(backend, func(t *testing.T) {
			refFasta, readsFastq, sim := testData(t)
			s := New()
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			loc := submitJob(t, s, ts,
				map[string]string{"b": "15", "sf": "50", "backend": backend},
				map[string][]byte{"reference": refFasta, "reads": readsFastq})
			s.Wait()

			// Job page should render as done.
			resp, err := http.Get(ts.URL + loc)
			if err != nil {
				t.Fatal(err)
			}
			page, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !strings.Contains(string(page), "done") {
				t.Fatalf("job page not done:\n%s", page)
			}

			// Results TSV must agree with the simulated truth.
			resp, err = http.Get(ts.URL + loc + "/results")
			if err != nil {
				t.Fatal(err)
			}
			tsv, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("results status %d: %s", resp.StatusCode, tsv)
			}
			lines := strings.Split(strings.TrimSpace(string(tsv)), "\n")
			if len(lines) != len(sim)+1 {
				t.Fatalf("%d result lines, want %d", len(lines), len(sim)+1)
			}
			byID := map[string]string{}
			for _, line := range lines[1:] {
				fields := strings.Split(line, "\t")
				byID[fields[0]] = fields[1]
			}
			for _, r := range sim {
				wantMapped := fmt.Sprintf("%t", r.Origin >= 0)
				if byID[r.ID] != wantMapped {
					t.Errorf("read %s: mapped=%s, want %s", r.ID, byID[r.ID], wantMapped)
				}
			}
		})
	}
}

func TestGzippedUploads(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	gzipped := func(b []byte) []byte {
		var buf bytes.Buffer
		gw := gzip.NewWriter(&buf)
		gw.Write(b)
		gw.Close()
		return buf.Bytes()
	}
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	loc := submitJob(t, s, ts,
		map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": gzipped(refFasta), "reads": gzipped(readsFastq)})
	s.Wait()
	resp, err := http.Get(ts.URL + loc + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gzipped job failed: %d", resp.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	post := func(fields map[string]string, files map[string][]byte) int {
		body, ctype := buildUpload(t, fields, files)
		resp, err := client.Post(ts.URL+"/jobs", ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if code := post(map[string]string{"b": "99"}, map[string][]byte{"reference": refFasta, "reads": readsFastq}); code != http.StatusBadRequest {
		t.Errorf("invalid b accepted: %d", code)
	}
	if code := post(map[string]string{"b": "abc"}, map[string][]byte{"reference": refFasta, "reads": readsFastq}); code != http.StatusBadRequest {
		t.Errorf("non-numeric b accepted: %d", code)
	}
	if code := post(map[string]string{"backend": "gpu"}, map[string][]byte{"reference": refFasta, "reads": readsFastq}); code != http.StatusBadRequest {
		t.Errorf("bad backend accepted: %d", code)
	}
	if code := post(nil, map[string][]byte{"reads": readsFastq}); code != http.StatusBadRequest {
		t.Errorf("missing reference accepted: %d", code)
	}
	if code := post(nil, map[string][]byte{"reference": refFasta}); code != http.StatusBadRequest {
		t.Errorf("missing reads accepted: %d", code)
	}
	// A garbage reference parses on the job goroutine: the submission is
	// accepted (303 redirect to the job page) and the failure lands in the
	// job's failed state — see TestSubmitParseFailureFailsJob.
	if code := post(nil, map[string][]byte{"reference": []byte("garbage"), "reads": readsFastq}); code != http.StatusSeeOther {
		t.Errorf("garbage reference returned %d, want 303 (async parse failure)", code)
	}
	s.Wait()
}

func TestJobNotFound(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job returned %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/jobs/abc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("bad job id returned %d", resp2.StatusCode)
	}
}

func TestResultsBeforeDone(t *testing.T) {
	s := New()
	job := s.createJob("cpu", 15, 50, 0, "x", 100, 10)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d/results", ts.URL, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("queued job results returned %d, want 409", resp.StatusCode)
	}
}

func TestHomeListsJobs(t *testing.T) {
	s := New()
	s.createJob("cpu", 15, 50, 0, "refA", 100, 10)
	s.createJob("fpga", 15, 50, 0, "refB", 100, 10)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"refA", "refB", "BWaveR"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("home page missing %q", want)
		}
	}
}

func TestDemoJob(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(ts.URL + "/demo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("demo returned %d", resp.StatusCode)
	}
	s.Wait()
	loc := resp.Header.Get("Location")
	res, err := http.Get(ts.URL + loc + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("demo results returned %d", res.StatusCode)
	}
}

func TestJoinPositions(t *testing.T) {
	if got := joinPositions(nil, nil, 10); got != "-" {
		t.Errorf("joinPositions(nil) = %q", got)
	}
	if got := joinPositions(nil, []int32{30, 10, 20}, 10); got != "10,20,30" {
		t.Errorf("joinPositions = %q, want sorted", got)
	}
	cs, err := core.NewContigSet([]string{"a", "b"}, []int{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := joinPositions(cs, []int32{150, 95}, 10); got != "boundary@95,b:50" {
		t.Errorf("contig joinPositions = %q", got)
	}
}

func TestParseReferenceConcatenatesRecords(t *testing.T) {
	in := strings.NewReader(">a\nACGT\n>b\nTTTT\n")
	seq, contigs, name, err := parseReference(in)
	if err != nil {
		t.Fatal(err)
	}
	if name != "a" || !seq.Equal(dna.MustParseSeq("ACGTTTTT")) {
		t.Errorf("parseReference = %q %q", name, seq)
	}
	if contigs == nil || contigs.Count() != 2 || contigs.Contig(1).Name != "b" {
		t.Errorf("parseReference contigs wrong: %+v", contigs)
	}
}

func TestJSONAPI(t *testing.T) {
	refFasta, readsFastq, sim := testData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	loc := submitJob(t, s, ts,
		map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	resp, err := http.Get(ts.URL + "/api" + loc)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var payload struct {
		State   string  `json:"state"`
		Reads   int     `json:"reads"`
		Mapped  int     `json:"mapped"`
		Backend string  `json:"backend"`
		MapMs   float64 `json:"map_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.State != "done" || payload.Reads != len(sim) || payload.Backend != "cpu" {
		t.Errorf("payload wrong: %+v", payload)
	}
	wantMapped := 0
	for _, r := range sim {
		if r.Origin >= 0 {
			wantMapped++
		}
	}
	if payload.Mapped != wantMapped {
		t.Errorf("mapped %d, want %d", payload.Mapped, wantMapped)
	}

	// The list endpoint must include the job.
	listResp, err := http.Get(ts.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list []struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != 1 {
		t.Errorf("job list wrong: %+v", list)
	}

	// Missing job: 404 JSON.
	missing, err := http.Get(ts.URL + "/api/jobs/99")
	if err != nil {
		t.Fatal(err)
	}
	defer missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("missing job returned %d", missing.StatusCode)
	}
}

func TestConcurrentJobsBounded(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Fire more jobs than the concurrency limit; all must finish correctly.
	const jobs = 6
	for i := 0; i < jobs; i++ {
		submitJob(t, s, ts,
			map[string]string{"backend": "cpu"},
			map[string][]byte{"reference": refFasta, "reads": readsFastq})
	}
	s.Wait()
	resp, err := http.Get(ts.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != jobs {
		t.Fatalf("%d jobs listed, want %d", len(list), jobs)
	}
	for i, j := range list {
		if j.State != "done" {
			t.Errorf("job %d state %q, want done", i, j.State)
		}
	}
}

func TestMismatchJob(t *testing.T) {
	// Reads with one substitution each: exact jobs miss them, a mismatch
	// budget of 1 maps them.
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 6000, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 30, Length: 50, MappingRatio: 1, ErrorRate: 0.02, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	fw := fastx.NewWriter(&fb, fastx.FASTA, false)
	fw.Write(&fastx.Record{ID: "ref", Seq: []byte(ref.String())})
	fw.Close()
	var qb bytes.Buffer
	qw := fastx.NewWriter(&qb, fastx.FASTQ, false)
	for _, r := range sim {
		qw.Write(&fastx.Record{ID: r.ID, Seq: []byte(r.Seq.String())})
	}
	qw.Close()

	for _, backend := range []string{"cpu", "fpga"} {
		s := New()
		ts := httptest.NewServer(s.Handler())
		loc := submitJob(t, s, ts,
			map[string]string{"backend": backend, "mismatches": "2"},
			map[string][]byte{"reference": fb.Bytes(), "reads": qb.Bytes()})
		s.Wait()
		resp, err := http.Get(ts.URL + loc + "/results")
		if err != nil {
			t.Fatal(err)
		}
		tsv, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: results status %d: %s", backend, resp.StatusCode, tsv)
		}
		lines := strings.Split(strings.TrimSpace(string(tsv)), "\n")
		if !strings.Contains(lines[0], "best_mismatches") {
			t.Fatalf("%s: approx TSV header wrong: %q", backend, lines[0])
		}
		byID := map[string][]string{}
		for _, line := range lines[1:] {
			f := strings.Split(line, "\t")
			byID[f[0]] = f
		}
		for _, r := range sim {
			if r.Errors > 2 {
				continue
			}
			f := byID[r.ID]
			if f == nil || f[1] != "true" {
				t.Errorf("%s: read %s with %d errors not mapped: %v", backend, r.ID, r.Errors, f)
			}
		}
	}
	// Budget out of range rejected.
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, ctype := buildUpload(t, map[string]string{"mismatches": "9"},
		map[string][]byte{"reference": fb.Bytes(), "reads": qb.Bytes()})
	resp, err := http.Post(ts.URL+"/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("excessive budget accepted: %d", resp.StatusCode)
	}
}

func TestMultiContigServerResults(t *testing.T) {
	g1, _ := readsim.Genome(readsim.GenomeConfig{Length: 2000, Seed: 16})
	g2, _ := readsim.Genome(readsim.GenomeConfig{Length: 1500, Seed: 17})
	var fb bytes.Buffer
	fw := fastx.NewWriter(&fb, fastx.FASTA, false)
	fw.Write(&fastx.Record{ID: "chrA", Seq: []byte(g1.String())})
	fw.Write(&fastx.Record{ID: "chrB", Seq: []byte(g2.String())})
	fw.Close()
	var qb bytes.Buffer
	qw := fastx.NewWriter(&qb, fastx.FASTQ, false)
	qw.Write(&fastx.Record{ID: "inB", Seq: []byte(g2[300:350].String())})
	qw.Close()

	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	loc := submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": fb.Bytes(), "reads": qb.Bytes()})
	s.Wait()
	resp, err := http.Get(ts.URL + loc + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	tsv, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(tsv), "chrB:300") {
		t.Errorf("contig-relative position missing:\n%s", tsv)
	}
}
