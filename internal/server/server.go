// Package server implements the BWaveR web application of §III-D: users
// upload a reference (FASTA) and reads (FASTQ), plain or gzipped; the server
// runs the three-step pipeline — BWT and SA computation, BWT encoding,
// sequence mapping — and serves the mapping results for download. The
// paper's Flask front-end becomes a net/http front-end; the FPGA co-processor
// becomes the simulated device of internal/fpga, selectable per job.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fastx"
	"bwaver/internal/fmindex"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

// JobState tracks a pipeline run.
type JobState string

// Job lifecycle states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Job is one mapping request moving through the pipeline.
type Job struct {
	ID      int
	State   JobState
	Error   string
	Backend string // "cpu" or "fpga"
	B, SF   int
	// Mismatches is the substitution budget; 0 = exact matching.
	Mismatches int

	RefName   string
	RefLength int
	Reads     int
	Mapped    int
	// Done counts reads mapped so far while the job is running.
	Done int

	BuildTime time.Duration
	MapTime   time.Duration
	Created   time.Time

	results []byte // TSV, available when done
}

// Server is the web application. Create with New and mount via Handler.
type Server struct {
	mu     sync.Mutex
	jobs   map[int]*Job
	nextID int
	// MaxUploadBytes bounds request bodies; default 256 MiB.
	MaxUploadBytes int64
	// sem bounds how many pipelines run at once; index builds are
	// memory-hungry (the suffix array alone is 4 bytes/base), so excess
	// jobs wait in the queued state instead of exhausting the host.
	sem chan struct{}
	// wg lets tests wait for asynchronous jobs.
	wg sync.WaitGroup
}

// DefaultMaxConcurrentJobs bounds simultaneously running pipelines.
const DefaultMaxConcurrentJobs = 2

// New creates an empty server.
func New() *Server {
	return &Server{
		jobs:           map[int]*Job{},
		nextID:         1,
		MaxUploadBytes: 256 << 20,
		sem:            make(chan struct{}, DefaultMaxConcurrentJobs),
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleHome)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /api/jobs/{id}", s.handleJobJSON)
	mux.HandleFunc("GET /api/jobs", s.handleJobsJSON)
	mux.HandleFunc("GET /demo", s.handleDemo)
	return mux
}

// jobJSON is the wire form of a job for the JSON API.
type jobJSON struct {
	ID        int     `json:"id"`
	State     string  `json:"state"`
	Error     string  `json:"error,omitempty"`
	Backend   string  `json:"backend"`
	B         int     `json:"b"`
	SF        int     `json:"sf"`
	RefName   string  `json:"ref_name"`
	RefLength int     `json:"ref_length"`
	Reads     int     `json:"reads"`
	Mapped    int     `json:"mapped"`
	Done      int     `json:"done"`
	BuildMs   float64 `json:"build_ms"`
	MapMs     float64 `json:"map_ms"`
}

func (j *Job) toJSON() jobJSON {
	return jobJSON{
		ID: j.ID, State: string(j.State), Error: j.Error, Backend: j.Backend,
		B: j.B, SF: j.SF, RefName: j.RefName, RefLength: j.RefLength,
		Reads: j.Reads, Mapped: j.Mapped, Done: j.Done,
		BuildMs: float64(j.BuildTime) / float64(time.Millisecond),
		MapMs:   float64(j.MapTime) / float64(time.Millisecond),
	}
}

func (s *Server) handleJobJSON(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
		return
	}
	s.mu.Lock()
	payload := job.toJSON()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payload)
}

func (s *Server) handleJobsJSON(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]jobJSON, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j.toJSON())
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(jobs)
}

// Wait blocks until all running jobs finish; used by tests and shutdown.
func (s *Server) Wait() { s.wg.Wait() }

var homeTemplate = template.Must(template.New("home").Parse(`<!doctype html>
<html><head><title>BWaveR</title></head><body>
<h1>BWaveR — hybrid DNA sequence mapper</h1>
<p>Upload a reference genome (FASTA) and query sequences (FASTQ), plain or gzipped.
The pipeline computes the BWT and suffix array, encodes the BWT as a wavelet
tree of RRR sequences, and maps every read and its reverse complement.</p>
<form action="/jobs" method="post" enctype="multipart/form-data">
<p>Reference (FASTA): <input type="file" name="reference" required></p>
<p>Reads (FASTQ): <input type="file" name="reads" required></p>
<p>Block size b: <input type="number" name="b" value="15" min="2" max="15"></p>
<p>Superblock factor sf: <input type="number" name="sf" value="50" min="1"></p>
<p>Mismatch budget: <input type="number" name="mismatches" value="0" min="0" max="4"> (0 = exact)</p>
<p>Backend:
<select name="backend">
<option value="fpga">FPGA (simulated Alveo U200)</option>
<option value="cpu">CPU</option>
</select></p>
<p><input type="submit" value="Map"></p>
</form>
<h2>Jobs</h2>
<ul>{{range .}}<li><a href="/jobs/{{.ID}}">job {{.ID}}</a> — {{.State}} ({{.RefName}}, {{.Reads}} reads)</li>{{end}}</ul>
<p>No data handy? <a href="/demo">Run a synthetic demo job</a>.</p>
</body></html>`))

var jobTemplate = template.Must(template.New("job").Parse(`<!doctype html>
<html><head><title>BWaveR job {{.ID}}</title>
{{if or (eq .State "queued") (eq .State "running")}}<meta http-equiv="refresh" content="2">{{end}}
</head><body>
<h1>Job {{.ID}} — {{.State}}</h1>
{{if .Error}}<p style="color:red">{{.Error}}</p>{{end}}
<table>
<tr><td>Backend</td><td>{{.Backend}}</td></tr>
<tr><td>RRR parameters</td><td>b={{.B}} sf={{.SF}}</td></tr>
<tr><td>Reference</td><td>{{.RefName}} ({{.RefLength}} bp)</td></tr>
<tr><td>Reads</td><td>{{.Reads}}</td></tr>
<tr><td>Mapped</td><td>{{.Mapped}}</td></tr>
<tr><td>Index build</td><td>{{.BuildTime}}</td></tr>
<tr><td>Mapping</td><td>{{.MapTime}}</td></tr>
</table>
{{if eq .State "done"}}<p><a href="/jobs/{{.ID}}/results">Download results (TSV)</a></p>{{end}}
<p><a href="/">Back</a></p>
</body></html>`))

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := homeTemplate.Execute(w, jobs); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func formInt(r *http.Request, name string, def int) (int, error) {
	v := r.FormValue(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", name, err)
	}
	return n, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.MaxUploadBytes)
	if err := r.ParseMultipartForm(s.MaxUploadBytes); err != nil {
		http.Error(w, "bad upload: "+err.Error(), http.StatusBadRequest)
		return
	}
	b, err := formInt(r, "b", 15)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sf, err := formInt(r, "sf", 50)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	mismatches, err := formInt(r, "mismatches", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if mismatches < 0 || mismatches > fmindex.MaxMismatchBudget {
		http.Error(w, fmt.Sprintf("mismatch budget must be in [0,%d]", fmindex.MaxMismatchBudget), http.StatusBadRequest)
		return
	}
	backend := r.FormValue("backend")
	if backend == "" {
		backend = "fpga"
	}
	if backend != "cpu" && backend != "fpga" {
		http.Error(w, "backend must be cpu or fpga", http.StatusBadRequest)
		return
	}
	if err := (rrr.Params{BlockSize: b, SuperblockFactor: sf}).Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	refFile, _, err := r.FormFile("reference")
	if err != nil {
		http.Error(w, "missing reference upload", http.StatusBadRequest)
		return
	}
	defer refFile.Close()
	readsFile, _, err := r.FormFile("reads")
	if err != nil {
		http.Error(w, "missing reads upload", http.StatusBadRequest)
		return
	}
	defer readsFile.Close()

	ref, contigs, refName, err := parseReference(refFile)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reads, ids, err := parseReads(readsFile)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	job := s.createJob(backend, b, sf, refName, len(ref), len(reads))
	job.Mismatches = mismatches
	s.startJob(job, ref, contigs, reads, ids)
	http.Redirect(w, r, fmt.Sprintf("/jobs/%d", job.ID), http.StatusSeeOther)
}

// handleDemo runs the pipeline on a small synthetic dataset so the UI can be
// exercised without files at hand.
func (s *Server) handleDemo(w http.ResponseWriter, r *http.Request) {
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 50000, Seed: time.Now().UnixNano(), RepeatFraction: 0.2})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 1000, Length: 80, MappingRatio: 0.7, RevCompFraction: 0.5, Seed: 42,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ids := make([]string, len(sim))
	for i, rd := range sim {
		ids[i] = rd.ID
	}
	job := s.createJob("fpga", 15, 50, "synthetic-demo", len(ref), len(sim))
	s.startJob(job, ref, nil, readsim.Seqs(sim), ids)
	http.Redirect(w, r, fmt.Sprintf("/jobs/%d", job.ID), http.StatusSeeOther)
}

func parseReference(r io.Reader) (dna.Seq, *core.ContigSet, string, error) {
	recs, err := fastx.ReadAll(r)
	if err != nil {
		return nil, nil, "", fmt.Errorf("reference: %w", err)
	}
	if len(recs) == 0 {
		return nil, nil, "", errors.New("reference: no FASTA records")
	}
	// Multi-record references are concatenated; contig metadata lets the
	// results translate back to per-record coordinates.
	var all []byte
	names := make([]string, len(recs))
	lengths := make([]int, len(recs))
	for i, rec := range recs {
		all = append(all, rec.Seq...)
		names[i] = rec.ID
		lengths[i] = len(rec.Seq)
	}
	seq, _ := dna.Sanitize(all, dna.A)
	contigs, err := core.NewContigSet(names, lengths)
	if err != nil {
		return nil, nil, "", fmt.Errorf("reference: %w", err)
	}
	return seq, contigs, recs[0].ID, nil
}

func parseReads(r io.Reader) ([]dna.Seq, []string, error) {
	recs, err := fastx.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("reads: %w", err)
	}
	if len(recs) == 0 {
		return nil, nil, errors.New("reads: no records")
	}
	seqs := make([]dna.Seq, len(recs))
	ids := make([]string, len(recs))
	for i, rec := range recs {
		seqs[i], _ = dna.Sanitize(rec.Seq, dna.A)
		ids[i] = rec.ID
	}
	return seqs, ids, nil
}

func (s *Server) createJob(backend string, b, sf int, refName string, refLen, reads int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := &Job{
		ID: s.nextID, State: StateQueued, Backend: backend, B: b, SF: sf,
		RefName: refName, RefLength: refLen, Reads: reads, Created: time.Now(),
	}
	s.nextID++
	s.jobs[job.ID] = job
	return job
}

func (s *Server) startJob(job *Job, ref dna.Seq, contigs *core.ContigSet, reads []dna.Seq, ids []string) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		err := s.runJob(job, ref, contigs, reads, ids)
		s.mu.Lock()
		defer s.mu.Unlock()
		if err != nil {
			job.State = StateFailed
			job.Error = err.Error()
		} else {
			job.State = StateDone
		}
	}()
}

func (s *Server) runJob(job *Job, ref dna.Seq, contigs *core.ContigSet, reads []dna.Seq, ids []string) error {
	s.mu.Lock()
	job.State = StateRunning
	s.mu.Unlock()

	// Steps 1+2: BWT/SA computation and succinct encoding.
	buildStart := time.Now()
	ix, err := core.BuildIndex(ref, core.IndexConfig{
		RRR: rrr.Params{BlockSize: job.B, SuperblockFactor: job.SF},
	})
	if err != nil {
		return err
	}
	if contigs != nil {
		if err := ix.SetContigs(contigs); err != nil {
			return err
		}
	}
	buildTime := time.Since(buildStart)

	var buf bytes.Buffer
	var mapped int
	var mapTime time.Duration
	if job.Mismatches > 0 {
		mapped, mapTime, err = s.runApprox(job, ix, reads, ids, &buf)
	} else {
		mapped, mapTime, err = s.runExact(job, ix, reads, ids, &buf)
	}
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	job.BuildTime = buildTime
	job.MapTime = mapTime
	job.Mapped = mapped
	job.results = buf.Bytes()
	return nil
}

// runExact is pipeline step 3 for exact matching on either backend.
func (s *Server) runExact(job *Job, ix *core.Index, reads []dna.Seq, ids []string, buf *bytes.Buffer) (int, time.Duration, error) {
	var (
		results []core.MapResult
		mapTime time.Duration
	)
	if job.Backend == "fpga" {
		dev, err := fpga.NewDevice(fpga.Config{})
		if err != nil {
			return 0, 0, err
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			return 0, 0, err
		}
		run, err := kernel.MapReads(reads)
		if err != nil {
			return 0, 0, err
		}
		if _, err := kernel.LocateResults(run.Results); err != nil {
			return 0, 0, err
		}
		results = run.Results
		mapTime = run.Profile.Total()
	} else {
		var stats core.MapStats
		var err error
		results, stats, err = ix.MapReads(reads, core.MapOptions{
			Locate: true, Workers: -1,
			Progress: func(done, total int) {
				s.mu.Lock()
				job.Done = done
				s.mu.Unlock()
			},
		})
		if err != nil {
			return 0, 0, err
		}
		mapTime = stats.Elapsed
	}
	mapped := writeResultsTSV(buf, ix.Contigs(), ids, reads, results)
	return mapped, mapTime, nil
}

// runApprox is step 3 with a mismatch budget: the two-pass reconfigurable
// flow on the FPGA model, the branching search on the CPU.
func (s *Server) runApprox(job *Job, ix *core.Index, reads []dna.Seq, ids []string, buf *bytes.Buffer) (int, time.Duration, error) {
	type row struct {
		mapped      bool
		bestMM      int
		occurrences int
	}
	rows := make([]row, len(reads))
	var mapTime time.Duration
	if job.Backend == "fpga" {
		dev, err := fpga.NewDevice(fpga.Config{})
		if err != nil {
			return 0, 0, err
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			return 0, 0, err
		}
		run, err := kernel.MapReadsTwoPass(reads, job.Mismatches)
		if err != nil {
			return 0, 0, err
		}
		mapTime = run.Profile.Total()
		for i, exact := range run.Exact {
			if exact.Mapped() {
				rows[i] = row{mapped: true, bestMM: 0, occurrences: exact.Occurrences()}
				continue
			}
			res := run.Approx[i]
			rows[i] = row{mapped: res.Mapped(), bestMM: res.BestMismatches(), occurrences: res.Occurrences()}
		}
	} else {
		start := time.Now()
		for i, read := range reads {
			res, err := ix.MapReadApprox(read, job.Mismatches)
			if err != nil {
				return 0, 0, err
			}
			rows[i] = row{mapped: res.Mapped(), bestMM: res.BestMismatches(), occurrences: res.Occurrences()}
		}
		mapTime = time.Since(start)
	}
	fmt.Fprintln(buf, "read\tmapped\tbest_mismatches\toccurrences")
	mapped := 0
	for i, r := range rows {
		if r.mapped {
			mapped++
		}
		fmt.Fprintf(buf, "%s\t%t\t%d\t%d\n", ids[i], r.mapped, r.bestMM, r.occurrences)
	}
	return mapped, mapTime, nil
}

// writeResultsTSV emits one row per read: id, mapped flag, per-strand
// occurrence counts and positions (contig-relative when the reference had
// multiple records). It returns the mapped-read count.
func writeResultsTSV(w io.Writer, contigs *core.ContigSet, ids []string, reads []dna.Seq, results []core.MapResult) int {
	fmt.Fprintln(w, "read\tmapped\tfw_count\tfw_positions\trc_count\trc_positions")
	mapped := 0
	for i, res := range results {
		if res.Mapped() {
			mapped++
		}
		span := len(reads[i])
		fmt.Fprintf(w, "%s\t%t\t%d\t%s\t%d\t%s\n",
			ids[i], res.Mapped(),
			res.Forward.Count(), joinPositions(contigs, res.ForwardPositions, span),
			res.Reverse.Count(), joinPositions(contigs, res.ReversePositions, span))
	}
	return mapped
}

func joinPositions(contigs *core.ContigSet, ps []int32, span int) string {
	if len(ps) == 0 {
		return "-"
	}
	sorted := append([]int32(nil), ps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	parts := make([]string, 0, len(sorted))
	for _, p := range sorted {
		if contigs != nil && contigs.Count() > 1 {
			if c, off, ok := contigs.Resolve(int(p), span); ok {
				parts = append(parts, fmt.Sprintf("%s:%d", c.Name, off))
			} else {
				parts = append(parts, fmt.Sprintf("boundary@%d", p))
			}
		} else {
			parts = append(parts, strconv.Itoa(int(p)))
		}
	}
	return strings.Join(parts, ",")
}

func (s *Server) jobByRequest(r *http.Request) (*Job, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("bad job id %q", r.PathValue("id"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("job %d not found", id)
	}
	return job, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.mu.Lock()
	snapshot := *job
	s.mu.Unlock()
	snapshot.results = nil
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := jobTemplate.Execute(w, snapshot); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.mu.Lock()
	state := job.State
	results := job.results
	s.mu.Unlock()
	if state != StateDone {
		http.Error(w, fmt.Sprintf("job is %s; results not available", state), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=bwaver-job-%d.tsv", job.ID))
	w.Write(results)
}
