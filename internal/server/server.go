// Package server implements the BWaveR web application of §III-D: users
// upload a reference (FASTA) and reads (FASTQ), plain or gzipped; the server
// runs the three-step pipeline — BWT and SA computation, BWT encoding,
// sequence mapping — and serves the mapping results for download. The
// paper's Flask front-end becomes a net/http front-end; the FPGA co-processor
// becomes the simulated device of internal/fpga, selectable per job.
//
// Built indexes are held in a content-addressed LRU cache (see cache.go), so
// repeat references skip the dominant construction cost — the amortization
// the paper's fixed-overhead argument depends on. Jobs carry a context: they
// can be cancelled over the API (DELETE /api/jobs/{id}), bounded by a
// per-job timeout, and finished jobs are evicted after a TTL. Operational
// counters are exposed at /api/stats.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fastx"
	"bwaver/internal/fpga"
	"bwaver/internal/obs"
	"bwaver/internal/qc"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
	"bwaver/internal/sam"
)

// JobState tracks a pipeline run.
type JobState string

// Job lifecycle states. Uploading jobs were created through the chunked
// protocol (POST /api/jobs) and are still receiving payload chunks; they
// occupy an admission queue slot but have not launched.
const (
	StateUploading JobState = "uploading"
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// errJobCanceled is the cancellation cause recorded when a user cancels a
// job over the API, distinguishing it from a timeout.
var errJobCanceled = errors.New("canceled by user")

// Job.Mode values. The empty mode keeps the historical dispatch: exact
// matching, or the mismatch-budget search when one is set.
const (
	// ModeMem maps reads with the seed-and-extend pipeline (SMEM seeding,
	// collinear chaining, banded extension) and streams SAM records.
	ModeMem = "mem"
	// ModeMemPE is ModeMem over interleaved mate pairs (R1, R2, R1, R2, ...)
	// with mate rescue and proper-pair calls.
	ModeMemPE = "mem-pe"
)

// memMode reports whether the job runs the seed-and-extend pipeline.
func (j *Job) memMode() bool { return j.Mode == ModeMem || j.Mode == ModeMemPE }

// Job is one mapping request moving through the pipeline.
type Job struct {
	ID      int
	State   JobState
	Error   string
	Backend string // "cpu" or "fpga"
	B, SF   int
	// Mismatches is the substitution budget; 0 = exact matching.
	Mismatches int
	// Mode selects the mapping pipeline: "" (exact matching, or the
	// branching approximate search when Mismatches > 0), ModeMem
	// (seed-and-extend, single-end), or ModeMemPE (seed-and-extend on
	// interleaved mate pairs with rescue and proper-pair calls).
	Mode string

	RefName   string
	RefLength int
	Reads     int
	Mapped    int
	// Done counts reads mapped so far while the job is running.
	Done int
	// CacheHit reports whether the index came from the cache instead of
	// being built for this job.
	CacheHit bool
	// FallbackUsed reports that the FPGA backend failed and the job was
	// transparently rerun on the CPU baseline.
	FallbackUsed bool
	// FallbackReason records the device error that triggered the fallback.
	FallbackReason string
	// QC is the job's quality-control policy (zero = strict parse, no
	// gates); QCReport the resulting ingest accounting, journaled with the
	// terminal record so replay restores identical reject counts.
	QC       qc.Policy
	QCReport *qc.Report

	ParseTime time.Duration
	BuildTime time.Duration
	MapTime   time.Duration
	Created   time.Time
	Finished  time.Time

	// IdemKey is the client's Idempotency-Key, journaled with the job so a
	// retried submission maps back here instead of double-running.
	IdemKey string
	// RequestID is the X-Request-Id of the submission that created the job,
	// journaled with it so a failed-over job is traceable across processes.
	RequestID string
	// timeout is the job's effective deadline budget, resolved at admission
	// from the server's -job-timeout and any gateway-propagated
	// X-Bwaver-Timeout-Ms remaining budget; 0 = unbounded.
	timeout time.Duration
	// PeakResultBuf is the largest number of result bytes the job staged in
	// memory for one batch — the figure that proves streamed jobs hold
	// O(batch), not O(job), result memory.
	PeakResultBuf int

	results []byte // TSV in memory (stateless servers)
	// resultsPath/resultsSize point at the file-backed TSV written
	// incrementally by the job's emitter (durable servers); results stays nil.
	resultsPath string
	resultsSize int64
	// stream is the job's NDJSON result log served by GET
	// /api/jobs/{id}/stream; created lazily on first use.
	stream *resultStream
	// upload tracks chunked-ingest progress; nil for buffered submissions.
	upload *uploadState

	cancel context.CancelCauseFunc // nil until the job is launched
	// trace is the job's span tree, created at launch and served live at
	// /api/jobs/{id}/trace; span is its root, closed by finishJob.
	trace *obs.Trace
	span  *obs.Span
}

// Config tunes the server; zero values take the listed defaults.
type Config struct {
	// MaxConcurrentJobs bounds simultaneously running pipelines;
	// default DefaultMaxConcurrentJobs.
	MaxConcurrentJobs int
	// MaxUploadBytes bounds request bodies; default 256 MiB.
	MaxUploadBytes int64
	// CacheEntries is the index cache capacity in entries; default 8.
	CacheEntries int
	// FtabK is the order of the k-mer prefix-lookup table built into job
	// indexes (the first FtabK backward-search steps collapse into one table
	// lookup). 0 disables the table; the bwaver-server CLI passes
	// core.DefaultFtabK unless overridden with -ftab-k.
	FtabK int
	// JobTTL evicts finished (done/failed/canceled) jobs and their results
	// this long after completion; 0 retains jobs forever.
	JobTTL time.Duration
	// JobTimeout bounds each job's runtime (queue wait included);
	// 0 means no timeout.
	JobTimeout time.Duration
	// JanitorInterval is how often expired jobs are swept when JobTTL is
	// set; default 30s.
	JanitorInterval time.Duration

	// StateDir, when set, makes the server crash-safe: job lifecycle
	// transitions are journaled (fsync'd) under this directory, built
	// indexes are spilled to disk, and Open replays the journal on startup —
	// terminal jobs come back with their results, unfinished jobs re-queue.
	// Empty means stateless (the pre-journal behavior).
	StateDir string
	// MaxQueue bounds jobs waiting for a pipeline slot; submissions beyond
	// it are shed with 503. 0 takes DefaultMaxQueue, negative disables the
	// bound.
	MaxQueue int
	// RatePerSec is the per-client job-creation rate limit (token bucket,
	// keyed by client IP); exceeded clients get 429. 0 disables.
	RatePerSec float64
	// RateBurst is the token-bucket depth when RatePerSec is set; 0 derives
	// it from the rate (at least 1).
	RateBurst int
	// TrustedProxies is a comma-separated list of CIDRs (or bare IPs) whose
	// X-Forwarded-For headers are trusted for rate-limit client keying. Empty
	// (the default) never trusts the header.
	TrustedProxies string

	// StreamBatch is how many reads are mapped between result-stream flushes;
	// default core.DefaultStreamBatch. Smaller batches stream sooner and hold
	// less memory; larger ones amortize per-batch overhead.
	StreamBatch int
	// UploadTimeout fails chunked jobs idle this long mid-upload, freeing
	// their admission queue slot; 0 disables the sweep.
	UploadTimeout time.Duration

	// Devices is the number of simulated accelerator cards; default 1.
	Devices int
	// FaultPlan, when non-nil, injects simulated faults into every device
	// (see fpga.ParseFaultPlan for the textual form).
	FaultPlan *fpga.FaultPlan
	// MaxRetries is how many times a failed shard is retried on the same
	// device after its first attempt; 0 takes the fpga default (2 retries,
	// 3 attempts), negative disables retries.
	MaxRetries int
	// BreakerThreshold consecutive failures open a device's circuit
	// breaker; 0 takes the fpga default.
	BreakerThreshold int
	// BreakerCooldown is the open-breaker probe delay; 0 takes the fpga
	// default.
	BreakerCooldown time.Duration
	// Fallback chooses what happens when the FPGA path fails with a device
	// error: "cpu" (default) transparently reruns the job on the CPU
	// baseline, "fail" surfaces the error as a failed job.
	Fallback string
	// VerifyStride cross-checks every Nth FPGA result against the CPU on
	// the host; default DefaultVerifyStride, negative disables.
	VerifyStride int

	// Logger receives structured request and job logs; nil discards them.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiles expose internals and cost CPU to render.
	EnablePprof bool
}

// DefaultCacheEntries is the default index cache capacity.
const DefaultCacheEntries = 8

// DefaultVerifyStride samples every Nth FPGA result for a host-side CPU
// cross-check.
const DefaultVerifyStride = 64

// multipartMemoryThreshold is how much of a multipart upload is held in
// memory before spilling to disk — distinct from MaxUploadBytes, which
// bounds the total request body.
const multipartMemoryThreshold = 32 << 20

func (c Config) withDefaults() Config {
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = DefaultMaxConcurrentJobs
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.JanitorInterval <= 0 {
		c.JanitorInterval = 30 * time.Second
	}
	if c.Devices <= 0 {
		c.Devices = 1
	}
	if c.Fallback == "" {
		c.Fallback = "cpu"
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = DefaultMaxQueue
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0 // unlimited
	}
	if c.VerifyStride == 0 {
		c.VerifyStride = DefaultVerifyStride
	} else if c.VerifyStride < 0 {
		c.VerifyStride = 0
	}
	if c.StreamBatch <= 0 {
		c.StreamBatch = DefaultStreamBatch
	}
	return c
}

// Server is the web application. Create with New or NewWithConfig and mount
// via Handler.
type Server struct {
	mu     sync.Mutex
	jobs   map[int]*Job
	nextID int
	// MaxUploadBytes bounds request bodies; default 256 MiB. Retained as a
	// field for backward compatibility; NewWithConfig sets it from Config.
	MaxUploadBytes int64
	cfg            Config
	cache          *indexCache
	// devices are the simulated cards, shared by cached farms; the cards
	// own their circuit breakers, so health survives cache churn.
	devices []*fpga.Device
	// rec accumulates resilience counters across every farm.
	rec *fpga.StatsRecorder
	// sem bounds how many pipelines run at once; index builds are
	// memory-hungry (the suffix array alone is 4 bytes/base), so excess
	// jobs wait in the queued state instead of exhausting the host.
	sem chan struct{}
	// wg lets tests wait for asynchronous jobs.
	wg sync.WaitGroup

	// journal is the durable job log under Config.StateDir; nil when the
	// server is stateless. limiter is the per-client admission rate limiter;
	// nil when disabled. Both are safe to use as nil.
	journal *journal
	limiter *rateLimiter
	// trustedProxies are the networks whose X-Forwarded-For is believed for
	// rate-limit keying; empty means never.
	trustedProxies []*net.IPNet
	// queuedCount tracks jobs occupying admission queue slots (queued +
	// uploading), maintained by setJobStateLocked so the -max-queue gate is
	// O(1) instead of a scan over every retained job. Guarded by mu.
	queuedCount int
	// idemKeys maps Idempotency-Key values to job IDs. Guarded by mu.
	idemKeys map[string]int
	// draining marks the server as shutting down: admission rejects new
	// jobs while in-flight ones finish. Guarded by mu.
	draining bool
	// jobsReplayed counts jobs re-queued from the journal at startup;
	// admissionRejected counts shed submissions by reason. Guarded by mu.
	jobsReplayed      uint64
	admissionRejected map[string]uint64

	// Aggregate per-stage timings of completed jobs, for /api/stats.
	totalParse    time.Duration
	totalBuild    time.Duration
	totalMap      time.Duration
	completedJobs int
	jobsEvicted   uint64
	// memStats aggregates the seed-and-extend pipeline counters (seeds,
	// chains, extensions, rescues, DP cells) over every mode=mem batch the
	// server has mapped, whichever backend ran it. Guarded by mu.
	memStats core.MemStats
	// memReconfigs counts fabric reconfigurations charged by mode=mem FPGA
	// jobs — one per session under the batched two-pass schedule, however
	// many batches the job streamed. Guarded by mu.
	memReconfigs uint64
	// qcTotals aggregates ingest QC accounting (attempted, malformed,
	// per-reason rejects, trimmed bases) over every job; journal recovery
	// re-merges terminal jobs' reports, so the totals survive restarts.
	// Guarded by mu.
	qcTotals qc.Report

	// Observability (see obs.go): structured logger, metric registry, and
	// the event-time instruments; scrape-time collectors read server state
	// directly.
	log                *slog.Logger
	registry           *obs.Registry
	mJobsTotal         *obs.CounterVec
	mJobStage          *obs.HistogramVec
	mBuildStage        *obs.HistogramVec
	mHTTPTotal         *obs.CounterVec
	mHTTPSeconds       *obs.HistogramVec
	mAdmissionRejected *obs.CounterVec
	mStreamEvents      *obs.CounterVec
	mStreamSubscribers *obs.GaugeVec
	mUploadChunks      *obs.CounterVec
	mUploadBytes       *obs.CounterVec

	janitorStop chan struct{}
	janitorDone chan struct{}
	closeOnce   sync.Once

	// testHookBeforeRun, when set, runs at the start of every job's
	// pipeline with the job's context; tests use it to hold jobs in the
	// running state deterministically.
	testHookBeforeRun func(*Job, context.Context)
	// testHookDuringBuild, when set, runs inside the index-build closure
	// before construction; tests use it to cancel jobs mid-build.
	testHookDuringBuild func(*Job, context.Context)
}

// DefaultMaxConcurrentJobs bounds simultaneously running pipelines.
const DefaultMaxConcurrentJobs = 2

// New creates a server with default configuration.
func New() *Server { return NewWithConfig(Config{}) }

// NewWithConfig creates a server. When cfg.JobTTL is set, a janitor
// goroutine sweeps expired jobs until Close is called. It panics when the
// state directory cannot be opened — use Open to handle that error.
func NewWithConfig(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic("server: " + err.Error())
	}
	return s
}

// Open creates a server and, when cfg.StateDir is set, opens the durable
// job journal and replays it: finished jobs are restored with their results
// and accepted-but-unfinished jobs are re-queued against their persisted
// inputs, then the journal is compacted. The error covers an unusable state
// directory; with no StateDir, Open cannot fail.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	devices := make([]*fpga.Device, cfg.Devices)
	for i := range devices {
		dev, err := fpga.NewDevice(fpga.Config{})
		if err != nil {
			// The zero config resolves to the paper-aligned defaults, which
			// always validate.
			panic("server: default fpga device: " + err.Error())
		}
		dev.EnableFaults(cfg.FaultPlan, i)
		devices[i] = dev
	}
	s := &Server{
		jobs:              map[int]*Job{},
		nextID:            1,
		MaxUploadBytes:    cfg.MaxUploadBytes,
		cfg:               cfg,
		cache:             newIndexCache(cfg.CacheEntries),
		devices:           devices,
		rec:               fpga.NewStatsRecorder(),
		sem:               make(chan struct{}, cfg.MaxConcurrentJobs),
		log:               cfg.Logger,
		limiter:           newRateLimiter(cfg.RatePerSec, cfg.RateBurst),
		admissionRejected: map[string]uint64{},
		idemKeys:          map[string]int{},
	}
	if cfg.TrustedProxies != "" {
		nets, err := parseTrustedProxies(cfg.TrustedProxies)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.trustedProxies = nets
	}
	s.initObs()
	if cfg.StateDir != "" {
		jl, err := openJournal(cfg.StateDir, s.log)
		if err != nil {
			return nil, err
		}
		s.journal = jl
		// Built indexes spill next to the journal, so replayed jobs (and
		// post-restart repeats) skip reconstruction; a corrupt spill file is
		// rejected by its checksum and rebuilt.
		s.cache.setSpill(filepath.Join(cfg.StateDir, indexSpillDir), s.log)
		if err := s.recover(); err != nil {
			jl.close()
			return nil, err
		}
	}
	if cfg.JobTTL > 0 || cfg.UploadTimeout > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go s.janitor()
	}
	return s, nil
}

// Close stops the TTL janitor and closes the journal; it does not interrupt
// running jobs (use Wait or Drain for those). Safe to call multiple times
// and on servers without a TTL or state dir.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.janitorStop != nil {
			close(s.janitorStop)
			<-s.janitorDone
		}
		s.journal.close()
	})
}

func (s *Server) janitor() {
	defer close(s.janitorDone)
	ticker := time.NewTicker(s.cfg.JanitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			now := time.Now()
			s.evictExpiredJobs(now)
			s.sweepStalledUploads(now)
		case <-s.janitorStop:
			return
		}
	}
}

// evictExpiredJobs drops finished jobs whose TTL has lapsed, freeing their
// retained TSV results. Evictions are journaled (with their result files
// removed) so a restart does not resurrect them. It returns how many were
// evicted.
func (s *Server) evictExpiredJobs(now time.Time) int {
	if s.cfg.JobTTL <= 0 {
		return 0
	}
	s.mu.Lock()
	var evicted []int
	for id, j := range s.jobs {
		if j.State.terminal() && !j.Finished.IsZero() && now.Sub(j.Finished) > s.cfg.JobTTL {
			s.releaseIdemKeyLocked(j)
			delete(s.jobs, id)
			evicted = append(evicted, id)
		}
	}
	s.jobsEvicted += uint64(len(evicted))
	s.mu.Unlock()
	if s.journal != nil {
		for _, id := range evicted {
			s.journal.appendBestEffort(journalRecord{Type: recEvicted, Job: id})
			s.journal.removeFiles(resultsName(id), streamName(id))
		}
	}
	return len(evicted)
}

// Handler returns the HTTP routes, each wrapped with the per-route request
// counter, latency histogram, and access log (see obs.go). Route labels are
// the patterns themselves, so metric cardinality stays fixed no matter what
// IDs clients request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		pattern string
		handler http.HandlerFunc
	}{
		{"GET /{$}", s.handleHome},
		{"POST /jobs", s.handleSubmit},
		{"GET /jobs/{id}", s.handleJob},
		{"GET /jobs/{id}/results", s.handleResults},
		{"GET /api/jobs/{id}", s.handleJobJSON},
		{"DELETE /api/jobs/{id}", s.handleCancelJob},
		{"GET /api/jobs", s.handleJobsJSON},
		{"POST /api/jobs", s.handleCreateJob},
		{"PUT /api/jobs/{id}/reference", s.handleUploadChunk("reference")},
		{"PUT /api/jobs/{id}/reads", s.handleUploadChunk("reads")},
		{"POST /api/jobs/{id}/finalize", s.handleFinalize},
		{"GET /api/jobs/{id}/stream", s.handleStream},
		{"GET /api/jobs/{id}/trace", s.handleTrace},
		{"GET /api/stats", s.handleStats},
		{"GET /api/health", s.handleHealth},
		{"GET /metrics", s.handleMetrics},
		{"GET /demo", s.handleDemo},
	}
	for _, rt := range routes {
		mux.Handle(rt.pattern, s.instrument(rt.pattern, rt.handler))
	}
	if s.cfg.EnablePprof {
		// Uninstrumented on purpose: profile downloads would dominate the
		// latency histograms.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	// Request identity wraps the whole mux so every handler — and the access
	// log inside instrument — sees the X-Request-Id on the context.
	return s.withRequestID(mux)
}

// jsonError writes the structured error envelope every /api/* handler uses:
// {"error": "..."} with the right status and content type.
func jsonError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// wantsJSON reports whether the client asked for a JSON response.
func wantsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/json") || strings.Contains(accept, "application/x-ndjson")
}

// httpError renders an error for endpoints reachable from both the HTML forms
// and the API: the structured JSON envelope when the client accepts JSON,
// plain text otherwise. The form endpoints used to answer plain text
// unconditionally, so API clients had to parse two error shapes.
func httpError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	if wantsJSON(r) {
		jsonError(w, status, msg)
		return
	}
	http.Error(w, msg, status)
}

// jobJSON is the wire form of a job for the JSON API.
type jobJSON struct {
	ID             int     `json:"id"`
	State          string  `json:"state"`
	Error          string  `json:"error,omitempty"`
	Backend        string  `json:"backend"`
	B              int     `json:"b"`
	SF             int     `json:"sf"`
	Mismatches     int     `json:"mismatches"`
	Mode           string  `json:"mode,omitempty"`
	RefName        string  `json:"ref_name"`
	RefLength      int     `json:"ref_length"`
	Reads          int     `json:"reads"`
	Mapped         int     `json:"mapped"`
	Done           int     `json:"done"`
	CacheHit       bool    `json:"cache_hit"`
	Fallback       bool    `json:"fallback"`
	FallbackReason string  `json:"fallback_reason,omitempty"`
	ParseMs        float64 `json:"parse_ms"`
	BuildMs        float64 `json:"build_ms"`
	MapMs          float64 `json:"map_ms"`
	PeakResultBuf  int     `json:"peak_result_buffer_bytes"`
	RequestID      string  `json:"request_id,omitempty"`
	// QC is the job's quality-control policy (absent when inactive);
	// QCReport the resulting ingest accounting once the job has parsed.
	QC       *qc.Policy `json:"qc,omitempty"`
	QCReport *qc.Report `json:"qc_report,omitempty"`
	// Upload resume anchors, present while the job is uploading.
	ReferenceOffset *int64 `json:"reference_offset,omitempty"`
	ReadsOffset     *int64 `json:"reads_offset,omitempty"`
}

func (j *Job) toJSON() jobJSON {
	out := jobJSON{
		ID: j.ID, State: string(j.State), Error: j.Error, Backend: j.Backend,
		B: j.B, SF: j.SF, Mismatches: j.Mismatches, Mode: j.Mode,
		RefName: j.RefName, RefLength: j.RefLength,
		Reads: j.Reads, Mapped: j.Mapped, Done: j.Done, CacheHit: j.CacheHit,
		Fallback: j.FallbackUsed, FallbackReason: j.FallbackReason,
		ParseMs:       float64(j.ParseTime) / float64(time.Millisecond),
		BuildMs:       float64(j.BuildTime) / float64(time.Millisecond),
		MapMs:         float64(j.MapTime) / float64(time.Millisecond),
		PeakResultBuf: j.PeakResultBuf,
		RequestID:     j.RequestID,
	}
	if j.QC.Active() {
		pol := j.QC
		out.QC = &pol
	}
	if j.QCReport != nil {
		rep := *j.QCReport
		out.QCReport = &rep
	}
	if j.State == StateUploading && j.upload != nil {
		j.upload.mu.Lock()
		ref, reads := j.upload.refSize, j.upload.readsSize
		j.upload.mu.Unlock()
		out.ReferenceOffset, out.ReadsOffset = &ref, &reads
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(payload)
}

func (s *Server) handleJobJSON(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		jsonError(w, http.StatusNotFound, err.Error())
		return
	}
	s.mu.Lock()
	payload := job.toJSON()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleJobsJSON(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]jobJSON, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j.toJSON())
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	writeJSON(w, http.StatusOK, jobs)
}

// handleCancelJob cancels a queued or running job. A queued job leaves the
// admission queue immediately: its launch goroutine is parked on the slot
// semaphore and the context cancellation below wins that select at once,
// freeing the queue slot for new admissions. An already-terminal job answers
// 409 carrying the terminal state, so a canceling client that raced the
// job's completion learns what actually happened.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		jsonError(w, http.StatusNotFound, err.Error())
		return
	}
	s.mu.Lock()
	state := job.State
	cancel := job.cancel
	if state.terminal() {
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("job already %s", state),
			"id":    job.ID,
			"state": string(state),
		})
		return
	}
	if cancel == nil {
		// Never launched (still uploading, created directly, or launch still
		// pending): cancel it in place.
		s.setJobStateLocked(job, StateCanceled)
		job.Error = errJobCanceled.Error()
		job.Finished = time.Now()
		s.mu.Unlock()
		if s.journal != nil {
			s.journal.appendBestEffort(journalRecord{Type: recCanceled, Job: job.ID, Error: errJobCanceled.Error(), Finished: job.Finished})
			refRel, readsRel := payloadNames(job.ID)
			s.journal.removeFiles(refRel, readsRel)
		}
		s.closeJobStream(job)
		writeJSON(w, http.StatusOK, map[string]any{"id": job.ID, "state": string(StateCanceled)})
		return
	}
	// Cancel while still holding the lock: the state was checked terminal-
	// free under this same critical section, so the 202 below can never race
	// a completed job into looking cancelable. CancelCauseFunc is lock-free;
	// the job goroutine observes it at its next context check.
	cancel(errJobCanceled)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{"id": job.ID, "state": "canceling"})
}

// statsJSON is the /api/stats payload.
type statsJSON struct {
	Cache      cacheStats           `json:"cache"`
	Ftab       ftabStats            `json:"ftab"`
	Jobs       map[string]int       `json:"jobs"`
	QueueDepth int                  `json:"queue_depth"`
	Running    int                  `json:"running"`
	Evicted    uint64               `json:"jobs_evicted"`
	Stage      stageJSON            `json:"stage_totals"`
	Mem        memStatsJSON         `json:"mem"`
	QC         qc.Report            `json:"qc"`
	Resilience fpga.ResilienceStats `json:"resilience"`
	Devices    []fpga.DeviceHealth  `json:"devices"`
	Fallback   string               `json:"fallback_policy"`
	Admission  admissionJSON        `json:"admission"`
}

// memStatsJSON is the mem block of /api/stats: the pipeline counters plus
// the fabric-reconfiguration count the batched two-pass schedule charges.
type memStatsJSON struct {
	core.MemStats
	Reconfigs uint64 `json:"reconfigs"`
}

// admissionJSON is the overload-protection block of /api/stats.
type admissionJSON struct {
	Draining      bool              `json:"draining"`
	MaxQueue      int               `json:"max_queue"`
	MaxConcurrent int               `json:"max_concurrent_jobs"`
	RatePerSec    float64           `json:"rate_per_sec"`
	RateBurst     int               `json:"rate_burst"`
	Rejected      map[string]uint64 `json:"rejected"`
	JobsReplayed  uint64            `json:"jobs_replayed"`
	Durable       bool              `json:"durable"`
}

// stageJSON aggregates per-stage timings over completed (done) jobs.
type stageJSON struct {
	CompletedJobs int     `json:"completed_jobs"`
	ParseMsTotal  float64 `json:"parse_ms_total"`
	BuildMsTotal  float64 `json:"build_ms_total"`
	MapMsTotal    float64 `json:"map_ms_total"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	payload := statsJSON{
		Cache:      s.cache.stats(),
		Ftab:       s.cache.ftabStats(s.cfg.FtabK),
		Jobs:       map[string]int{},
		Resilience: s.rec.Snapshot(),
		Devices:    s.deviceHealth(),
		Fallback:   s.cfg.Fallback,
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		payload.Jobs[string(j.State)]++
	}
	// Queue depth is the slot-holding count the -max-queue gate sees:
	// queued plus still-uploading jobs.
	payload.QueueDepth = s.queuedCount
	payload.Running = payload.Jobs[string(StateRunning)]
	payload.Evicted = s.jobsEvicted
	payload.Stage = stageJSON{
		CompletedJobs: s.completedJobs,
		ParseMsTotal:  float64(s.totalParse) / float64(time.Millisecond),
		BuildMsTotal:  float64(s.totalBuild) / float64(time.Millisecond),
		MapMsTotal:    float64(s.totalMap) / float64(time.Millisecond),
	}
	payload.Mem = memStatsJSON{MemStats: s.memStats, Reconfigs: s.memReconfigs}
	payload.QC = s.qcTotals
	payload.QC.Rejected = make(map[string]int, len(s.qcTotals.Rejected))
	for reason, n := range s.qcTotals.Rejected {
		payload.QC.Rejected[reason] = n
	}
	rejected := make(map[string]uint64, len(s.admissionRejected))
	for reason, n := range s.admissionRejected {
		rejected[reason] = n
	}
	payload.Admission = admissionJSON{
		Draining:      s.draining,
		MaxQueue:      s.cfg.MaxQueue,
		MaxConcurrent: s.cfg.MaxConcurrentJobs,
		RatePerSec:    s.cfg.RatePerSec,
		RateBurst:     s.cfg.RateBurst,
		Rejected:      rejected,
		JobsReplayed:  s.jobsReplayed,
		Durable:       s.journal != nil,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, payload)
}

// deviceHealth snapshots every card's breaker.
func (s *Server) deviceHealth() []fpga.DeviceHealth {
	out := make([]fpga.DeviceHealth, len(s.devices))
	for i, d := range s.devices {
		b := d.Breaker()
		out[i] = fpga.DeviceHealth{
			Device:              i,
			Breaker:             b.State().String(),
			ConsecutiveFailures: b.ConsecutiveFailures(),
			BreakerTrips:        b.Trips(),
		}
	}
	return out
}

// healthJSON is the /api/health payload.
type healthJSON struct {
	// Status is "ok" (all breakers closed/half-open), "degraded" (some
	// open), "critical" (all open — every FPGA job will fall back or fail,
	// per the fallback policy), or "draining" (shutdown in progress; new
	// jobs are rejected while in-flight ones finish).
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// QueueDepth and JobsInFlight are the load figures cluster gateways and
	// external balancers read off the heartbeat: admission-slot holders
	// (queued + uploading) and running pipelines.
	QueueDepth   int                  `json:"queue_depth"`
	JobsInFlight int                  `json:"jobs_in_flight"`
	Devices      []fpga.DeviceHealth  `json:"devices"`
	Resilience   fpga.ResilienceStats `json:"resilience"`
	Fallback     string               `json:"fallback_policy"`
}

// handleHealth reports device health. It always answers 200 — the payload,
// not the status code, carries the verdict, so pollers can distinguish
// "degraded service" from "server down".
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	devices := s.deviceHealth()
	open := 0
	for _, d := range devices {
		if d.Breaker == "open" {
			open++
		}
	}
	status := "ok"
	switch {
	case open == len(devices):
		status = "critical"
	case open > 0:
		status = "degraded"
	}
	draining := s.Draining()
	if draining {
		// Drain outranks device health: orchestrators must route new work
		// elsewhere no matter how healthy the cards are.
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthJSON{
		Status:       status,
		Draining:     draining,
		QueueDepth:   s.QueueDepth(),
		JobsInFlight: s.JobsInFlight(),
		Devices:      devices,
		Resilience:   s.rec.Snapshot(),
		Fallback:     s.cfg.Fallback,
	})
}

// Wait blocks until all running jobs finish; used by tests and shutdown.
func (s *Server) Wait() { s.wg.Wait() }

var homeTemplate = template.Must(template.New("home").Parse(`<!doctype html>
<html><head><title>BWaveR</title></head><body>
<h1>BWaveR — hybrid DNA sequence mapper</h1>
<p>Upload a reference genome (FASTA) and query sequences (FASTQ), plain or gzipped.
The pipeline computes the BWT and suffix array, encodes the BWT as a wavelet
tree of RRR sequences, and maps every read and its reverse complement.
Repeat references are served from the index cache.</p>
<form action="/jobs" method="post" enctype="multipart/form-data">
<p>Reference (FASTA): <input type="file" name="reference" required></p>
<p>Reads (FASTQ): <input type="file" name="reads" required></p>
<p>Block size b: <input type="number" name="b" value="15" min="2" max="15"></p>
<p>Superblock factor sf: <input type="number" name="sf" value="50" min="1"></p>
<p>Mismatch budget: <input type="number" name="mismatches" value="0" min="0" max="4"> (0 = exact)</p>
<p>Backend:
<select name="backend">
<option value="fpga">FPGA (simulated Alveo U200)</option>
<option value="cpu">CPU</option>
</select></p>
<p><input type="submit" value="Map"></p>
</form>
<h2>Jobs</h2>
<ul>{{range .}}<li><a href="/jobs/{{.ID}}">job {{.ID}}</a> — {{.State}} ({{.RefName}}, {{.Reads}} reads)</li>{{end}}</ul>
<p>No data handy? <a href="/demo">Run a synthetic demo job</a>.</p>
</body></html>`))

var jobTemplate = template.Must(template.New("job").Parse(`<!doctype html>
<html><head><title>BWaveR job {{.ID}}</title>
{{if or (eq .State "queued") (eq .State "running")}}<meta http-equiv="refresh" content="2">{{end}}
</head><body>
<h1>Job {{.ID}} — {{.State}}</h1>
{{if .Error}}<p style="color:red">{{.Error}}</p>{{end}}
<table>
<tr><td>Backend</td><td>{{.Backend}}{{if .FallbackUsed}} (fell back to CPU: {{.FallbackReason}}){{end}}</td></tr>
<tr><td>RRR parameters</td><td>b={{.B}} sf={{.SF}}</td></tr>
<tr><td>Mode</td><td>{{if .Mode}}{{.Mode}}{{else}}exact{{end}}</td></tr>
<tr><td>Mismatch budget</td><td>{{.Mismatches}}</td></tr>
<tr><td>Reference</td><td>{{.RefName}} ({{.RefLength}} bp)</td></tr>
<tr><td>Reads</td><td>{{.Reads}}</td></tr>
<tr><td>Progress</td><td>{{.Done}}/{{.Reads}}</td></tr>
<tr><td>Mapped</td><td>{{.Mapped}}</td></tr>
<tr><td>Index</td><td>{{if .CacheHit}}cache hit{{else}}built{{end}}</td></tr>
<tr><td>Index build</td><td>{{.BuildTime}}</td></tr>
<tr><td>Mapping</td><td>{{.MapTime}}</td></tr>
</table>
{{if eq .State "done"}}<p><a href="/jobs/{{.ID}}/results">Download results (TSV)</a></p>{{end}}
<p><a href="/">Back</a></p>
</body></html>`))

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, *j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	s.renderHTML(w, homeTemplate, jobs)
}

// renderHTML executes a template into a buffer first, so a mid-render
// failure produces a clean 500 instead of a half-written page, and the
// error detail goes to the log rather than the client.
func (s *Server) renderHTML(w http.ResponseWriter, tmpl *template.Template, data any) {
	var buf bytes.Buffer
	if err := tmpl.Execute(&buf, data); err != nil {
		s.log.Error("template render failed", "template", tmpl.Name(), "err", err)
		http.Error(w, "internal server error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(buf.Bytes())
}

func formInt(r *http.Request, name string, def int) (int, error) {
	v := r.FormValue(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s: %w", name, err)
	}
	return n, nil
}

// handleSubmit validates the request parameters and captures the raw upload
// bytes, then hands off to a job goroutine. Parsing and sanitizing the FASTA
// and FASTQ happen on the job goroutine, so a malformed or huge upload fails
// inside a visible job (StateFailed) instead of blocking the HTTP handler.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Idempotent replay first, before any gate: a retried submission must
	// come back with the original job without consuming a rate-limit token.
	idemKey := strings.TrimSpace(r.Header.Get("Idempotency-Key"))
	if job := s.idemLookup(idemKey); job != nil {
		s.answerSubmitted(w, r, job, true)
		return
	}
	// Shed before reading the body: a draining or rate-limited client's
	// upload should not cost parsing.
	if ae := s.preAdmit(r); ae != nil {
		s.rejectAdmission(w, ae)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.MaxUploadBytes)
	// The MaxBytesReader enforces the upload cap; the multipart argument is
	// only the in-memory threshold past which parts spill to temp files.
	// Passing the 256 MiB cap here would buffer whole uploads in RAM.
	if err := r.ParseMultipartForm(multipartMemoryThreshold); err != nil {
		httpError(w, r, http.StatusBadRequest, "bad upload: "+err.Error())
		return
	}
	b, err := formInt(r, "b", DefaultB)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	sf, err := formInt(r, "sf", DefaultSF)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	mismatches, err := formInt(r, "mismatches", 0)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	backend, mode, err := validateJobParams(r.FormValue("backend"), r.FormValue("mode"), b, sf, mismatches)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	qcPol, err := qcPolicyFromForm(r.FormValue, mode)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	refRaw, err := formFileBytes(r, "reference")
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "missing reference upload")
		return
	}
	readsRaw, err := formFileBytes(r, "reads")
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "missing reads upload")
		return
	}

	job, existing, ae := s.admitJob(jobSpec{
		Backend: backend, Mode: mode, B: b, SF: sf, Mismatches: mismatches,
		QC:      qcPol,
		RefName: "(parsing)", IdemKey: idemKey,
		RequestID: obs.RequestIDFrom(r.Context()),
		Timeout:   s.effectiveTimeout(r),
	}, StateQueued)
	if ae != nil {
		s.rejectAdmission(w, ae)
		return
	}
	if existing {
		s.answerSubmitted(w, r, job, true)
		return
	}
	if err := s.acceptAndLaunch(job, jobInput{refRaw: refRaw, readsRaw: readsRaw}); err != nil {
		s.log.Error("accepting job failed", "job", job.ID, "err", err)
		jsonError(w, http.StatusInternalServerError, "could not persist job")
		return
	}
	s.answerSubmitted(w, r, job, false)
}

// answerSubmitted responds to a successful (or idempotently replayed) submit:
// API clients get the job JSON, browsers get the redirect to the job page.
func (s *Server) answerSubmitted(w http.ResponseWriter, r *http.Request, job *Job, replayed bool) {
	if wantsJSON(r) {
		if replayed {
			s.respondIdempotentReplay(w, job)
			return
		}
		s.mu.Lock()
		payload := job.toJSON()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, payload)
		return
	}
	http.Redirect(w, r, fmt.Sprintf("/jobs/%d", job.ID), http.StatusSeeOther)
}

// acceptAndLaunch makes an admitted job durable (journal + payloads, when a
// state dir is configured) and starts it. A journaling failure fails the job
// in place — accepting work the server cannot persist would silently break
// the crash-safety contract.
func (s *Server) acceptAndLaunch(job *Job, in jobInput) error {
	// Balance the WaitGroup reference admitJob took for the admit→launch
	// window; launch (or the failure path) is reached before this returns,
	// so the count never dips early.
	defer s.wg.Done()
	if err := s.journalAccept(job, in); err != nil {
		s.mu.Lock()
		s.setJobStateLocked(job, StateFailed)
		job.Error = "journal: " + err.Error()
		job.Finished = time.Now()
		// The submission never became durable, so the idempotency key must
		// not pin a retry to this failure.
		s.releaseIdemKeyLocked(job)
		s.mu.Unlock()
		s.closeJobStream(job)
		return err
	}
	s.launch(job, in)
	return nil
}

// formFileBytes copies one multipart file into memory; the multipart buffers
// are released when the handler returns, so the job goroutine needs its own
// copy.
func formFileBytes(r *http.Request, field string) ([]byte, error) {
	f, _, err := r.FormFile(field)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// DefaultDemoSeed seeds the /demo dataset; pass ?seed=N to override. One
// seed drives both the genome and the reads (reads use seed+1) so repeated
// demo runs are reproducible.
const DefaultDemoSeed = 42

// handleDemo runs the pipeline on a small synthetic dataset so the UI can be
// exercised without files at hand. The dataset is rendered to FASTA/FASTQ
// bytes and submitted through the same raw-payload path as an upload, so
// demo jobs are journaled and replayed exactly like real ones.
func (s *Server) handleDemo(w http.ResponseWriter, r *http.Request) {
	idemKey := strings.TrimSpace(r.Header.Get("Idempotency-Key"))
	if job := s.idemLookup(idemKey); job != nil {
		s.answerSubmitted(w, r, job, true)
		return
	}
	if ae := s.preAdmit(r); ae != nil {
		s.rejectAdmission(w, ae)
		return
	}
	seed := int64(DefaultDemoSeed)
	if v := r.FormValue("seed"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, r, http.StatusBadRequest, "parameter seed: "+err.Error())
			return
		}
		seed = parsed
	}
	refRaw, readsRaw, counts, err := demoDataset(seed)
	if err != nil {
		s.log.Error("demo dataset generation failed", "seed", seed, "err", err)
		httpError(w, r, http.StatusInternalServerError, "internal server error")
		return
	}
	job, existing, ae := s.admitJob(jobSpec{
		Backend: "fpga", B: DefaultB, SF: DefaultSF,
		RefName: "synthetic-demo", RefLength: counts.refLen, Reads: counts.reads,
		IdemKey:   idemKey,
		RequestID: obs.RequestIDFrom(r.Context()),
		Timeout:   s.effectiveTimeout(r),
	}, StateQueued)
	if ae != nil {
		s.rejectAdmission(w, ae)
		return
	}
	if existing {
		s.answerSubmitted(w, r, job, true)
		return
	}
	if err := s.acceptAndLaunch(job, jobInput{refRaw: refRaw, readsRaw: readsRaw}); err != nil {
		s.log.Error("accepting demo job failed", "job", job.ID, "err", err)
		jsonError(w, http.StatusInternalServerError, "could not persist job")
		return
	}
	s.answerSubmitted(w, r, job, false)
}

// demoDataset renders the seeded synthetic reference and reads as FASTA and
// FASTQ bytes — the same wire form an upload arrives in.
func demoDataset(seed int64) (refRaw, readsRaw []byte, counts struct{ refLen, reads int }, err error) {
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 50000, Seed: seed, RepeatFraction: 0.2})
	if err != nil {
		return nil, nil, counts, err
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 1000, Length: 80, MappingRatio: 0.7, RevCompFraction: 0.5, Seed: seed + 1,
	})
	if err != nil {
		return nil, nil, counts, err
	}
	var fb bytes.Buffer
	fw := fastx.NewWriter(&fb, fastx.FASTA, false)
	if err := fw.Write(&fastx.Record{ID: "synthetic-demo", Seq: []byte(ref.String())}); err != nil {
		return nil, nil, counts, err
	}
	if err := fw.Close(); err != nil {
		return nil, nil, counts, err
	}
	var qb bytes.Buffer
	qw := fastx.NewWriter(&qb, fastx.FASTQ, false)
	for _, rd := range sim {
		if err := qw.Write(&fastx.Record{ID: rd.ID, Seq: []byte(rd.Seq.String())}); err != nil {
			return nil, nil, counts, err
		}
	}
	if err := qw.Close(); err != nil {
		return nil, nil, counts, err
	}
	counts.refLen, counts.reads = len(ref), len(sim)
	return fb.Bytes(), qb.Bytes(), counts, nil
}

func parseReference(r io.Reader) (dna.Seq, *core.ContigSet, string, error) {
	recs, err := fastx.ReadAll(r)
	if err != nil {
		return nil, nil, "", fmt.Errorf("reference: %w", err)
	}
	if len(recs) == 0 {
		return nil, nil, "", errors.New("reference: no FASTA records")
	}
	// Multi-record references are concatenated; contig metadata lets the
	// results translate back to per-record coordinates.
	var all []byte
	names := make([]string, len(recs))
	lengths := make([]int, len(recs))
	for i, rec := range recs {
		all = append(all, rec.Seq...)
		names[i] = rec.ID
		lengths[i] = len(rec.Seq)
	}
	seq, _ := dna.Sanitize(all, dna.A)
	contigs, err := core.NewContigSet(names, lengths)
	if err != nil {
		return nil, nil, "", fmt.Errorf("reference: %w", err)
	}
	return seq, contigs, recs[0].ID, nil
}

func parseReads(r io.Reader) ([]dna.Seq, []string, error) {
	recs, err := fastx.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("reads: %w", err)
	}
	if len(recs) == 0 {
		return nil, nil, errors.New("reads: no records")
	}
	seqs := make([]dna.Seq, len(recs))
	ids := make([]string, len(recs))
	for i, rec := range recs {
		seqs[i], _ = dna.Sanitize(rec.Seq, dna.A)
		ids[i] = rec.ID
	}
	return seqs, ids, nil
}

func (s *Server) createJob(backend string, b, sf, mismatches int, refName string, refLen, reads int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := &Job{
		ID: s.nextID, Backend: backend, B: b, SF: sf,
		Mismatches: mismatches,
		RefName:    refName, RefLength: refLen, Reads: reads, Created: time.Now(),
	}
	s.setJobStateLocked(job, StateQueued)
	s.nextID++
	s.jobs[job.ID] = job
	return job
}

// jobInput is what a launched job works on: raw upload bytes (parsed on the
// job goroutine), payload files on disk (chunked uploads and journal
// replays), or pre-parsed sequences.
type jobInput struct {
	refRaw, readsRaw   []byte
	refPath, readsPath string
	ref                dna.Seq
	contigs            *core.ContigSet
	reads              []dna.Seq
	ids                []string
}

// hasRawInput reports whether the job must parse its payload itself.
func (in jobInput) hasRawInput() bool {
	return in.refRaw != nil || in.refPath != ""
}

// openPayload returns a reader over one payload part, raw bytes or file.
func openPayload(raw []byte, path string) (io.ReadCloser, error) {
	if path != "" {
		return os.Open(path)
	}
	return io.NopCloser(bytes.NewReader(raw)), nil
}

// launch runs the job asynchronously: it waits for a pipeline slot (abortable
// by cancellation or timeout), runs the pipeline, and records the terminal
// state.
func (s *Server) launch(job *Job, in jobInput) {
	ctx, cancel := context.WithCancelCause(context.Background())
	tr := obs.NewTrace(fmt.Sprintf("job-%d", job.ID))
	// Later spans started from ctx nest under the job root.
	ctx, root := obs.StartSpan(obs.WithTrace(ctx, tr), "job")
	root.SetAttr("job_id", job.ID)
	root.SetAttr("backend", job.Backend)
	if job.RequestID != "" {
		root.SetAttr("request_id", job.RequestID)
	}
	s.mu.Lock()
	if job.State.terminal() {
		// Canceled between createJob and launch.
		s.mu.Unlock()
		cancel(nil)
		return
	}
	job.cancel = cancel
	job.trace = tr
	job.span = root
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel(nil)
		runCtx := ctx
		// The job's own budget (which a gateway may have shrunk below the
		// server-wide -job-timeout) wins over the config; replayed jobs carry
		// no budget and fall back to the config.
		if t := s.jobTimeout(job); t > 0 {
			var cancelTimeout context.CancelFunc
			runCtx, cancelTimeout = context.WithTimeout(ctx, t)
			defer cancelTimeout()
		}
		wait := root.StartChild("queue.wait")
		select {
		case s.sem <- struct{}{}:
			wait.End()
		case <-runCtx.Done():
			wait.End()
			s.finishJob(job, runCtx, runCtx.Err())
			return
		}
		defer func() { <-s.sem }()
		err := s.runJob(runCtx, job, in)
		s.finishJob(job, runCtx, err)
	}()
}

// finishJob records the job's terminal state, folds its stage timings into
// the server aggregates and metrics, closes the trace's root span, and logs
// the outcome.
func (s *Server) finishJob(job *Job, ctx context.Context, err error) {
	s.mu.Lock()
	job.Finished = time.Now()
	switch {
	case err == nil:
		s.setJobStateLocked(job, StateDone)
		s.totalParse += job.ParseTime
		s.totalBuild += job.BuildTime
		s.totalMap += job.MapTime
		s.completedJobs++
		s.mJobStage.With("parse").Observe(job.ParseTime.Seconds())
		s.mJobStage.With("build").Observe(job.BuildTime.Seconds())
		s.mJobStage.With("map").Observe(job.MapTime.Seconds())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		cause := context.Cause(ctx)
		switch {
		case errors.Is(cause, errJobCanceled):
			s.setJobStateLocked(job, StateCanceled)
			job.Error = errJobCanceled.Error()
		case errors.Is(cause, context.DeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
			s.setJobStateLocked(job, StateFailed)
			job.Error = fmt.Sprintf("job exceeded the %v timeout", s.jobTimeout(job))
		default:
			s.setJobStateLocked(job, StateFailed)
			job.Error = err.Error()
		}
	default:
		s.setJobStateLocked(job, StateFailed)
		job.Error = err.Error()
	}
	state, jobErr := job.State, job.Error
	results := job.results
	resultsPath := job.resultsPath
	span := job.span
	elapsed := job.Finished.Sub(job.Created)
	s.mu.Unlock()

	s.journalFinish(job, state, results, resultsPath)
	// Seal the result stream after the terminal state is durable, so every
	// subscriber gets the closing done/failed/canceled event.
	s.closeJobStream(job)
	span.SetAttr("state", string(state))
	span.End()
	s.mJobsTotal.With(string(state)).Inc()
	attrs := append(obs.JobAttrs(job.ID, job.Backend),
		"state", string(state), "elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	if job.RequestID != "" {
		attrs = append(attrs, "request_id", job.RequestID)
	}
	if jobErr != "" {
		attrs = append(attrs, "err", jobErr)
	}
	s.log.Info("job finished", attrs...)
}

// setJobProgress updates Done monotonically (parallel mappers may report
// out of order).
func (s *Server) setJobProgress(job *Job, done int) {
	s.mu.Lock()
	if done > job.Done {
		job.Done = done
	}
	s.mu.Unlock()
}

func (s *Server) runJob(ctx context.Context, job *Job, in jobInput) error {
	s.mu.Lock()
	s.setJobStateLocked(job, StateRunning)
	s.mu.Unlock()
	if s.journal != nil {
		s.journal.appendBestEffort(journalRecord{Type: recRunning, Job: job.ID})
	}
	if hook := s.testHookBeforeRun; hook != nil {
		hook(job, ctx)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	ref, contigs, reads, ids := in.ref, in.contigs, in.reads, in.ids
	var qcRejects []qc.Reject
	if in.hasRawInput() {
		_, parseSpan := obs.StartSpan(ctx, "parse")
		parseStart := time.Now()
		var refName string
		refReader, err := openPayload(in.refRaw, in.refPath)
		if err != nil {
			parseSpan.End()
			return err
		}
		// The reference always parses strictly: a corrupt reference is a
		// hard error, never something to resync past.
		ref, contigs, refName, err = parseReference(refReader)
		refReader.Close()
		if err != nil {
			parseSpan.End()
			return err
		}
		readsReader, err := openPayload(in.readsRaw, in.readsPath)
		if err != nil {
			parseSpan.End()
			return err
		}
		var qcReport *qc.Report
		reads, ids, qcRejects, qcReport, err = ingestReads(readsReader, job.QC)
		readsReader.Close()
		parseSpan.End()
		if err != nil {
			return err
		}
		s.mu.Lock()
		job.RefName = refName
		job.RefLength = len(ref)
		job.Reads = len(reads)
		job.ParseTime = time.Since(parseStart)
		if qcReport != nil {
			job.QCReport = qcReport
			s.qcTotals.Merge(*qcReport)
		}
		s.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
	}

	// Steps 1+2: BWT/SA computation and succinct encoding — through the
	// content-addressed cache, so a repeat reference skips construction
	// and concurrent jobs for one reference build once. The build threads
	// the job's context: cancellation aborts at the next phase boundary
	// instead of finishing a doomed construction while holding a slot, and
	// a trace on the context collects the per-phase spans.
	idxCfg := core.IndexConfig{
		RRR:   rrr.Params{BlockSize: job.B, SuperblockFactor: job.SF},
		FtabK: s.cfg.FtabK,
	}
	buildCtx, buildSpan := obs.StartSpan(ctx, "build")
	buildStart := time.Now()
	entry, hit, err := s.cache.getOrBuild(ctx, core.CacheKey(ref, contigs, idxCfg), func(context.Context) (*core.Index, error) {
		if hook := s.testHookDuringBuild; hook != nil {
			hook(job, buildCtx)
		}
		// buildCtx carries the same cancellation as the context the cache
		// passes, plus this job's trace, so the phase spans land here.
		ix, err := core.BuildIndexCtx(buildCtx, ref, idxCfg)
		if err != nil {
			return nil, err
		}
		if contigs != nil {
			if err := ix.SetContigs(contigs); err != nil {
				return nil, err
			}
		}
		return ix, nil
	})
	buildSpan.SetAttr("cache_hit", hit)
	buildSpan.End()
	if err != nil {
		return err
	}
	if !hit {
		// Fresh build: per-phase durations from the index's own stats.
		bs := entry.ix.Stats()
		s.mBuildStage.With("sa").Observe(bs.SATime.Seconds())
		s.mBuildStage.With("bwt").Observe(bs.BWTTime.Seconds())
		s.mBuildStage.With("encode").Observe(bs.EncodeTime.Seconds())
	}
	s.mu.Lock()
	job.CacheHit = hit
	job.BuildTime = time.Since(buildStart)
	s.mu.Unlock()

	mapCtx, mapSpan := obs.StartSpan(ctx, "map")
	em, err := s.newEmitter(job)
	if err != nil {
		mapSpan.End()
		return err
	}
	// Reject rows lead the stream: a client tailing the job sees which
	// reads were dropped (and why) before the mapping rows begin.
	if len(qcRejects) > 0 {
		if err := em.qcRejects(qcRejects); err != nil {
			em.discard()
			mapSpan.End()
			return err
		}
	}
	var mapped int
	var mapTime time.Duration
	switch {
	case job.memMode():
		mapped, mapTime, err = s.runMem(mapCtx, job, entry, reads, ids, em)
	case job.Mismatches > 0:
		mapped, mapTime, err = s.runApprox(mapCtx, job, entry, reads, ids, em)
	default:
		mapped, mapTime, err = s.runExact(mapCtx, job, entry, reads, ids, em)
	}
	mapSpan.SetAttr("reads", len(reads))
	mapSpan.End()
	if err != nil {
		em.discard()
		return err
	}
	if err := em.finish(); err != nil {
		em.discard()
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	job.MapTime = mapTime
	job.Mapped = mapped
	return nil
}

// farmOptions derives the resilience tuning every cached farm shares.
func (s *Server) farmOptions() fpga.FarmOptions {
	retry := fpga.RetryPolicy{}
	if s.cfg.MaxRetries > 0 {
		retry.MaxAttempts = s.cfg.MaxRetries + 1
	} else if s.cfg.MaxRetries < 0 {
		retry.MaxAttempts = 1
	}
	return fpga.FarmOptions{
		Retry:            retry,
		BreakerThreshold: s.cfg.BreakerThreshold,
		BreakerCooldown:  s.cfg.BreakerCooldown,
		VerifyStride:     s.cfg.VerifyStride,
		Recorder:         s.rec,
		Metrics:          s.registry,
	}
}

// shouldFallback decides whether an FPGA-path error warrants the transparent
// CPU rerun: the policy allows it, the error is a device failure (not bad
// input), and the job itself was not canceled or timed out.
func (s *Server) shouldFallback(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return s.cfg.Fallback == "cpu" && fpga.IsDeviceFailure(err)
}

// noteFallback records the CPU rerun on the job and in the global counters.
func (s *Server) noteFallback(job *Job, cause error) {
	s.rec.RecordFallback()
	s.mu.Lock()
	job.FallbackUsed = true
	job.FallbackReason = cause.Error()
	s.mu.Unlock()
}

// runExact is pipeline step 3 for exact matching on either backend, run in
// StreamBatch-sized slices so results are emitted (TSV + NDJSON stream) as
// each batch completes instead of accumulating for the whole job. When the
// FPGA farm fails with a device error and the fallback policy is "cpu", the
// remaining reads rerun on the CPU baseline — same results (the backends are
// bit-identical by construction), honest CPU timing; batches already emitted
// by the FPGA stand.
func (s *Server) runExact(ctx context.Context, job *Job, entry *cacheEntry, reads []dna.Seq, ids []string, em *jobEmitter) (int, time.Duration, error) {
	ix := entry.ix
	contigs := ix.Contigs()
	batch := s.cfg.StreamBatch
	if batch <= 0 {
		batch = DefaultStreamBatch
	}
	cpuFrom := func(off int, elapsed time.Duration) (int, time.Duration, error) {
		stats, err := ix.MapBatches(reads[off:], batch, core.MapOptions{
			Context: ctx, Locate: true, Workers: -1,
			Progress: func(done, total int) { s.setJobProgress(job, off+done) },
		}, func(start int, results []core.MapResult) error {
			return em.exactBatch(off+start, ids, reads, results, contigs)
		})
		if err != nil {
			return 0, 0, err
		}
		return em.mapped, elapsed + stats.Elapsed, nil
	}
	if job.Backend != "fpga" {
		return cpuFrom(0, 0)
	}
	var mapTime time.Duration
	for off := 0; off < len(reads); off += batch {
		end := min(off+batch, len(reads))
		chunk := reads[off:end]
		progress := func(done, total int) { s.setJobProgress(job, off+done) }
		run, ferr := func() (*fpga.RunResult, error) {
			// farmFor is cheap after the first batch: the cached farm reports
			// the index already resident on the devices.
			farm, resident, err := entry.farmFor(s.devices, s.farmOptions())
			if err != nil {
				return nil, err
			}
			run, err := farm.MapReadsOpts(chunk, fpga.MapRunOptions{
				Context: ctx, Progress: progress, IndexResident: resident,
			})
			if err != nil {
				return nil, err
			}
			if _, err := farm.LocateResults(run.Results); err != nil {
				return nil, err
			}
			return run, nil
		}()
		switch {
		case ferr == nil:
			mapTime += run.Profile.Total()
			addModeledEvents(obs.SpanFrom(ctx), run.Profile.Events)
			if err := em.exactBatch(off, ids, reads, run.Results, contigs); err != nil {
				return 0, 0, err
			}
		case s.shouldFallback(ctx, ferr):
			s.noteFallback(job, ferr)
			obs.SpanFrom(ctx).SetAttr("fallback", ferr.Error())
			return cpuFrom(off, mapTime)
		default:
			return 0, 0, ferr
		}
	}
	return em.mapped, mapTime, nil
}

// runApprox is step 3 with a mismatch budget, batched like runExact: the
// two-pass reconfigurable flow on the FPGA model, the branching search on the
// CPU.
func (s *Server) runApprox(ctx context.Context, job *Job, entry *cacheEntry, reads []dna.Seq, ids []string, em *jobEmitter) (int, time.Duration, error) {
	ix := entry.ix
	batch := s.cfg.StreamBatch
	if batch <= 0 {
		batch = DefaultStreamBatch
	}
	cpuFrom := func(off int, elapsed time.Duration) (int, time.Duration, error) {
		start := time.Now()
		for o := off; o < len(reads); o += batch {
			end := min(o+batch, len(reads))
			chunk := reads[o:end]
			results, err := ix.MapReadsApprox(chunk, job.Mismatches, core.MapOptions{
				Context: ctx, Workers: -1,
				Progress: func(done, total int) { s.setJobProgress(job, o+done) },
			})
			if err != nil {
				return 0, 0, err
			}
			rows := make([]approxRow, len(results))
			for i, res := range results {
				rows[i] = approxRow{
					Read: sanitizeID(ids[o+i]), Mapped: res.Mapped(),
					BestMismatches: res.BestMismatches(), Occurrences: res.Occurrences(),
				}
			}
			if err := em.approxBatch(o, ids, rows); err != nil {
				return 0, 0, err
			}
		}
		return em.mapped, elapsed + time.Since(start), nil
	}
	if job.Backend != "fpga" {
		return cpuFrom(0, 0)
	}
	var mapTime time.Duration
	for off := 0; off < len(reads); off += batch {
		end := min(off+batch, len(reads))
		chunk := reads[off:end]
		progress := func(done, total int) { s.setJobProgress(job, off+done) }
		run, ferr := func() (*fpga.TwoPassResult, error) {
			farm, resident, err := entry.farmFor(s.devices, s.farmOptions())
			if err != nil {
				return nil, err
			}
			return farm.MapReadsTwoPassOpts(chunk, job.Mismatches, fpga.MapRunOptions{
				Context: ctx, Progress: progress, IndexResident: resident,
			})
		}()
		switch {
		case ferr == nil:
			mapTime += run.Profile.Total()
			addModeledEvents(obs.SpanFrom(ctx), run.Profile.Events)
			rows := make([]approxRow, len(chunk))
			for i := range chunk {
				if exact := run.Exact[i]; exact.Mapped() {
					rows[i] = approxRow{Read: sanitizeID(ids[off+i]), Mapped: true, Occurrences: exact.Occurrences()}
					continue
				}
				res := run.Approx[i]
				rows[i] = approxRow{
					Read: sanitizeID(ids[off+i]), Mapped: res.Mapped(),
					BestMismatches: res.BestMismatches(), Occurrences: res.Occurrences(),
				}
			}
			if err := em.approxBatch(off, ids, rows); err != nil {
				return 0, 0, err
			}
		case s.shouldFallback(ctx, ferr):
			s.noteFallback(job, ferr)
			obs.SpanFrom(ctx).SetAttr("fallback", ferr.Error())
			return cpuFrom(off, mapTime)
		default:
			return 0, 0, ferr
		}
	}
	return em.mapped, mapTime, nil
}

// runMem is step 3 for mode=mem jobs: the seed-and-extend pipeline (SMEM
// seeding, collinear chaining, banded extension, MAPQ) on either backend,
// streamed as SAM text — the job's results file is a valid SAM file — plus
// one NDJSON row per read. On the FPGA the farm runs the two-pass
// reconfigurable flow (seeding pass on the FM pipelines, reconfiguration,
// extension pass on the systolic array) with pair-aligned shard boundaries;
// the CPU fallback reruns the identical pipeline, so batches already emitted
// by the FPGA stand — the backends are bit-identical by construction.
func (s *Server) runMem(ctx context.Context, job *Job, entry *cacheEntry, reads []dna.Seq, ids []string, em *jobEmitter) (int, time.Duration, error) {
	ix := entry.ix
	memOpts := core.MemOptions{Paired: job.Mode == ModeMemPE}
	batch := s.cfg.StreamBatch
	if batch <= 0 {
		batch = DefaultStreamBatch
	}
	if memOpts.Paired && batch%2 == 1 {
		// Pair-aligned batches: a mate pair split across batches would lose
		// its rescue and proper-pair context.
		batch++
	}
	// One SAM writer spans the whole job, so the header lands in the first
	// batch and every later batch drains as bare records.
	var samBuf bytes.Buffer
	sw, err := sam.NewWriter(&samBuf, ix.SAMRefSeqs())
	if err != nil {
		return 0, 0, err
	}
	var total core.MemStats
	var reconfigs uint64
	defer func() {
		s.mu.Lock()
		s.memStats.Merge(total)
		s.memReconfigs += reconfigs
		s.mu.Unlock()
	}()
	emit := func(off int, results []core.MemResult) error {
		rows := make([]memRow, 0, len(results))
		write := func(rec sam.Record, res core.MemResult) error {
			if err := sw.Write(rec); err != nil {
				return err
			}
			rows = append(rows, memRowFrom(rec, res))
			return nil
		}
		for i := 0; i < len(results); {
			g := off + i
			if memOpts.Paired && i+1 < len(results) {
				pr := core.MemPairFromResults(results[i], results[i+1], memOpts)
				rec1, rec2 := ix.MemPairRecords(samQName(ids[g], g), samQName(ids[g+1], g+1),
					reads[g], reads[g+1], pr)
				if err := write(rec1, results[i]); err != nil {
					return err
				}
				if err := write(rec2, results[i+1]); err != nil {
					return err
				}
				i += 2
				continue
			}
			if err := write(ix.MemRecord(samQName(ids[g], g), reads[g], results[i]), results[i]); err != nil {
				return err
			}
			i++
		}
		if err := sw.Flush(); err != nil {
			return err
		}
		if err := em.memBatch(samBuf.Bytes(), rows); err != nil {
			return err
		}
		samBuf.Reset()
		return nil
	}
	cpuFrom := func(off int, elapsed time.Duration) (int, time.Duration, error) {
		start := time.Now()
		// One result buffer serves every batch: with the zero-allocation
		// batch engine writing into it, the steady-state loop allocates only
		// what SAM rendering needs.
		results := make([]core.MemResult, 0, batch)
		for o := off; o < len(reads); o += batch {
			end := min(o+batch, len(reads))
			results = results[:end-o]
			stats, err := ix.MapReadsMemInto(results, reads[o:end], memOpts, core.MapOptions{Context: ctx})
			if err != nil {
				return 0, 0, err
			}
			total.Merge(stats)
			if err := emit(o, results); err != nil {
				return 0, 0, err
			}
			s.setJobProgress(job, end)
			if err := ctx.Err(); err != nil {
				return 0, 0, err
			}
		}
		return em.mapped, elapsed + time.Since(start), nil
	}
	if job.Backend != "fpga" {
		return cpuFrom(0, 0)
	}
	// The whole job runs as one two-pass session: the first batch pays the
	// single fabric reconfiguration, later batches keep the alignment array
	// programmed and overlap host seeding with modeled device extension.
	var session *fpga.MemSession
	var mapTime time.Duration
	progressBase := 0 // start of the batch the session is currently mapping
	for off := 0; off < len(reads); off += batch {
		end := min(off+batch, len(reads))
		chunk := reads[off:end]
		progressBase = off
		run, ferr := func() (*fpga.MemRunResult, error) {
			farm, resident, err := entry.farmFor(s.devices, s.farmOptions())
			if err != nil {
				return nil, err
			}
			if session == nil {
				session = farm.NewMemSession(memOpts, fpga.MapRunOptions{
					Context:       ctx,
					Progress:      func(done, total int) { s.setJobProgress(job, progressBase+done) },
					IndexResident: resident,
				})
			}
			return session.Map(chunk)
		}()
		switch {
		case ferr == nil:
			mapTime += run.Profile.Total()
			if run.Profile.Reconfig > 0 {
				reconfigs++
			}
			addModeledEvents(obs.SpanFrom(ctx), run.Profile.Events)
			total.Merge(run.Stats)
			if err := emit(off, run.Results); err != nil {
				return 0, 0, err
			}
		case s.shouldFallback(ctx, ferr):
			s.noteFallback(job, ferr)
			obs.SpanFrom(ctx).SetAttr("fallback", ferr.Error())
			return cpuFrom(off, mapTime)
		default:
			return 0, 0, ferr
		}
	}
	return em.mapped, mapTime, nil
}

// samQName makes a read ID usable as a SAM QNAME: the writer rejects
// whitespace, and an anonymous read still needs a name.
func samQName(id string, i int) string {
	id = strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\r':
			return '_'
		}
		return r
	}, id)
	if id == "" {
		return fmt.Sprintf("read-%d", i+1)
	}
	return id
}

// idSanitizer strips the TSV structural characters from user-supplied read
// IDs: an embedded tab or newline would otherwise corrupt the results file.
var idSanitizer = strings.NewReplacer("\t", " ", "\n", " ", "\r", " ")

// sanitizeID makes a read ID safe to embed in a TSV row.
func sanitizeID(id string) string { return idSanitizer.Replace(id) }

// writeResultsTSV emits one row per read: id, mapped flag, per-strand
// occurrence counts and positions (contig-relative when the reference had
// multiple records). It returns the mapped-read count.
func writeResultsTSV(w io.Writer, contigs *core.ContigSet, ids []string, reads []dna.Seq, results []core.MapResult) int {
	fmt.Fprintln(w, "read\tmapped\tfw_count\tfw_positions\trc_count\trc_positions")
	mapped := 0
	for i, res := range results {
		if res.Mapped() {
			mapped++
		}
		span := len(reads[i])
		fmt.Fprintf(w, "%s\t%t\t%d\t%s\t%d\t%s\n",
			sanitizeID(ids[i]), res.Mapped(),
			res.Forward.Count(), joinPositions(contigs, res.ForwardPositions, span),
			res.Reverse.Count(), joinPositions(contigs, res.ReversePositions, span))
	}
	return mapped
}

func joinPositions(contigs *core.ContigSet, ps []int32, span int) string {
	if len(ps) == 0 {
		return "-"
	}
	sorted := append([]int32(nil), ps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	parts := make([]string, 0, len(sorted))
	for _, p := range sorted {
		if contigs != nil && contigs.Count() > 1 {
			if c, off, ok := contigs.Resolve(int(p), span); ok {
				parts = append(parts, fmt.Sprintf("%s:%d", c.Name, off))
			} else {
				parts = append(parts, fmt.Sprintf("boundary@%d", p))
			}
		} else {
			parts = append(parts, strconv.Itoa(int(p)))
		}
	}
	return strings.Join(parts, ",")
}

func (s *Server) jobByRequest(r *http.Request) (*Job, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("bad job id %q", r.PathValue("id"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("job %d not found", id)
	}
	return job, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.mu.Lock()
	snapshot := *job
	s.mu.Unlock()
	snapshot.results = nil
	s.renderHTML(w, jobTemplate, snapshot)
}

// handleResults serves the buffered TSV download. Durable jobs stream it
// from the results file the emitter wrote, so the whole TSV is never held in
// memory; either way Content-Length is set so clients can show progress.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		httpError(w, r, http.StatusNotFound, err.Error())
		return
	}
	s.mu.Lock()
	state := job.State
	results := job.results
	path := job.resultsPath
	size := job.resultsSize
	memJob := job.memMode()
	s.mu.Unlock()
	if state != StateDone {
		httpError(w, r, http.StatusConflict, fmt.Sprintf("job is %s; results not available", state))
		return
	}
	// mode=mem jobs produce SAM text, the others TSV.
	ctype := "text/tab-separated-values; charset=utf-8"
	filename := fmt.Sprintf("bwaver-job-%d.tsv", job.ID)
	if memJob {
		ctype = "text/x-sam; charset=utf-8"
		filename = fmt.Sprintf("bwaver-job-%d.sam", job.ID)
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			s.log.Error("opening results file failed", "job", job.ID, "path", path, "err", err)
			httpError(w, r, http.StatusInternalServerError, "results unavailable")
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", ctype)
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s", filename))
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		io.Copy(w, f)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s", filename))
	w.Header().Set("Content-Length", strconv.Itoa(len(results)))
	w.Write(results)
}
