package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/fpga"
	"bwaver/internal/obs"
	"bwaver/internal/qc"
)

// Observability wiring: the Prometheus-style registry behind GET /metrics,
// the per-route HTTP instrumentation and access log, and the per-job trace
// endpoint. The registry mixes two collector styles deliberately: stage
// histograms and job counters are written at event time, while cache, queue,
// resilience, and breaker figures are read at scrape time from the state
// their owners already maintain — no double bookkeeping to drift.

// initObs builds the metric registry and instruments. Called once from
// NewWithConfig, before any job can run.
func (s *Server) initObs() {
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	reg := obs.NewRegistry()
	s.registry = reg

	s.mJobsTotal = reg.Counter("bwaver_jobs_finished_total",
		"Jobs that reached a terminal state, by state (done, failed, canceled).", "state")
	s.mJobStage = reg.Histogram("bwaver_job_stage_seconds",
		"Wall-clock duration of completed-job pipeline stages (parse, build, map).", nil, "stage")
	s.mBuildStage = reg.Histogram("bwaver_build_stage_seconds",
		"Duration of index-construction phases (sa, bwt, encode) for fresh, uncached builds.", nil, "stage")
	s.mHTTPTotal = reg.Counter("bwaver_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "code")
	s.mHTTPSeconds = reg.Histogram("bwaver_http_request_seconds",
		"HTTP request latency by route.", nil, "route")
	s.mAdmissionRejected = reg.Counter("bwaver_admission_rejected_total",
		"Job submissions refused before a job was created, by reason (draining, queue_full, rate_limited).", "reason")
	s.mStreamEvents = reg.Counter("bwaver_stream_events_total",
		"Result rows appended to job result streams.")
	s.mStreamSubscribers = reg.Gauge("bwaver_stream_subscribers",
		"Clients currently connected to GET /api/jobs/{id}/stream.")
	s.mUploadChunks = reg.Counter("bwaver_upload_chunks_total",
		"Chunks committed through the resumable ingest protocol, by part.", "part")
	s.mUploadBytes = reg.Counter("bwaver_upload_bytes_total",
		"Bytes committed through the resumable ingest protocol, by part.", "part")
	reg.CounterFunc("bwaver_jobs_replayed_total",
		"Jobs re-queued from the journal at startup.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.jobsReplayed) })
	reg.GaugeFunc("bwaver_draining",
		"1 while the server is draining (rejecting new jobs), else 0.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})

	// Breaker transitions are pushed by the devices themselves (outside the
	// breaker lock); position and trip count are read at scrape time.
	transitions := reg.Counter("bwaver_breaker_transitions_total",
		"Circuit-breaker state transitions, by device and new state.", "device", "to")
	for i, d := range s.devices {
		dev := strconv.Itoa(i)
		b := d.Breaker()
		b.SetNotify(func(from, to fpga.BreakerState) {
			transitions.With(dev, to.String()).Inc()
		})
		reg.GaugeFunc("bwaver_breaker_state",
			"Breaker position by device: 0 closed, 1 open, 2 half-open.",
			func() float64 { return float64(b.State()) }, "device", dev)
		reg.CounterFunc("bwaver_breaker_trips_total",
			"Times each device's breaker has opened.",
			func() float64 { return float64(b.Trips()) }, "device", dev)
	}

	for _, st := range []JobState{StateUploading, StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		st := st
		reg.GaugeFunc("bwaver_jobs",
			"Jobs currently tracked by the server, by state.",
			func() float64 { return float64(s.countJobs(st)) }, "state", string(st))
	}
	reg.GaugeFunc("bwaver_queue_depth",
		"Jobs waiting for a pipeline slot.",
		func() float64 { return float64(s.countJobs(StateQueued)) })
	reg.CounterFunc("bwaver_jobs_evicted_total",
		"Finished jobs dropped by the TTL janitor.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.jobsEvicted) })

	reg.CounterFunc("bwaver_index_cache_hits_total",
		"Index cache lookups served from an existing or in-flight build.",
		func() float64 { return float64(s.cache.stats().Hits) })
	reg.CounterFunc("bwaver_index_cache_misses_total",
		"Index cache lookups that started a build.",
		func() float64 { return float64(s.cache.stats().Misses) })
	reg.CounterFunc("bwaver_index_cache_evictions_total",
		"Index cache entries dropped by the LRU.",
		func() float64 { return float64(s.cache.stats().Evictions) })
	reg.CounterFunc("bwaver_index_cache_disk_hits_total",
		"Cache misses served by loading a spilled index from the state dir.",
		func() float64 { return float64(s.cache.stats().DiskHits) })
	reg.GaugeFunc("bwaver_index_cache_entries",
		"Indexes currently cached.",
		func() float64 { return float64(s.cache.stats().Entries) })
	reg.GaugeFunc("bwaver_index_cache_bytes",
		"Total size of cached succinct structures in bytes.",
		func() float64 { return float64(s.cache.stats().SizeBytes) })

	// Prefix-table lookups, aggregated over cached indexes at scrape time.
	// hit: the table answered (living or stored dead range); miss: the query
	// suffix held an out-of-alphabet symbol; short: the read was below k.
	for _, res := range []string{"hit", "miss", "short"} {
		res := res
		reg.CounterFunc("bwaver_ftab_lookups_total",
			"K-mer prefix-table lookups across cached indexes, by outcome.",
			func() float64 {
				fs := s.cache.ftabStats(s.cfg.FtabK)
				switch res {
				case "hit":
					return float64(fs.Hits)
				case "miss":
					return float64(fs.Misses)
				default:
					return float64(fs.Short)
				}
			}, "result", res)
	}
	reg.GaugeFunc("bwaver_ftab_bytes",
		"Total prefix-table bytes across cached indexes.",
		func() float64 { return float64(s.cache.ftabStats(s.cfg.FtabK).SizeBytes) })

	// Seed-and-extend (mode=mem) pipeline totals, read at scrape time from
	// the aggregate the mapping loop maintains under s.mu.
	memStat := func(get func(core.MemStats) int) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(get(s.memStats))
		}
	}
	reg.CounterFunc("bwaver_mem_reads_total",
		"Reads mapped through the seed-and-extend (mode=mem) pipeline.",
		memStat(func(m core.MemStats) int { return m.Reads }))
	reg.CounterFunc("bwaver_mem_mapped_reads_total",
		"mode=mem reads that produced an alignment.",
		memStat(func(m core.MemStats) int { return m.MappedReads }))
	reg.CounterFunc("bwaver_mem_seeds_total",
		"SMEM seeds surviving the ambiguity guard.",
		memStat(func(m core.MemStats) int { return m.Seeds }))
	reg.CounterFunc("bwaver_mem_chains_total",
		"Collinear seed chains formed.",
		memStat(func(m core.MemStats) int { return m.Chains }))
	reg.CounterFunc("bwaver_mem_extensions_total",
		"Banded extensions executed.",
		memStat(func(m core.MemStats) int { return m.Extensions }))
	reg.CounterFunc("bwaver_mem_rescues_total",
		"Mates placed by the paired rescue scan instead of their own seeds.",
		memStat(func(m core.MemStats) int { return m.Rescues }))
	reg.CounterFunc("bwaver_mem_dp_cells_total",
		"Dynamic-programming cells evaluated by mode=mem extensions.",
		memStat(func(m core.MemStats) int { return m.Cells }))
	reg.CounterFunc("bwaver_mem_reconfigs_total",
		"Fabric reconfigurations charged by mode=mem FPGA jobs (one per "+
			"session under the batched two-pass schedule).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.memReconfigs)
		})

	// QC gate totals. Reject reasons are a fixed enum pre-registered here so
	// journal tampering or future drift cannot mint new label values.
	qcStat := func(get func(qc.Report) int) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(get(s.qcTotals))
		}
	}
	for _, reason := range qc.Reasons() {
		if reason == qc.ReasonMalformed {
			continue // malformed records are counted separately below
		}
		reason := reason
		reg.CounterFunc("bwaver_qc_rejected_total",
			"Reads rejected by the QC gate, by reason.",
			qcStat(func(rep qc.Report) int { return rep.Rejected[reason] }),
			"reason", reason)
	}
	reg.CounterFunc("bwaver_qc_rejected_total",
		"Reads rejected by the QC gate, by reason.",
		qcStat(func(rep qc.Report) int { return rep.Rejected["invalid"] }),
		"reason", "invalid")
	reg.CounterFunc("bwaver_qc_malformed_total",
		"Malformed FASTQ records the tolerant decoder skipped.",
		qcStat(func(rep qc.Report) int { return rep.Malformed }))
	reg.CounterFunc("bwaver_qc_trimmed_bases_total",
		"Bases removed by 3' quality trimming.",
		qcStat(func(rep qc.Report) int { return rep.TrimmedBases }))

	for _, stage := range []string{"index", "query", "kernel", "result", "corrupt"} {
		stage := stage
		reg.CounterFunc("bwaver_fpga_faults_total",
			"Device failures the farms observed, by stage.",
			func() float64 { return float64(s.rec.Snapshot().Faults[stage]) }, "stage", stage)
	}
	reg.CounterFunc("bwaver_fpga_retries_total",
		"Shard attempts repeated on the same device.",
		func() float64 { return float64(s.rec.Snapshot().Retries) })
	reg.CounterFunc("bwaver_fpga_redistributed_shards_total",
		"Shards handed to a different device after their primary gave out.",
		func() float64 { return float64(s.rec.Snapshot().Redistributed) })
	reg.CounterFunc("bwaver_fpga_checksum_mismatches_total",
		"Result batches the host rejected on checksum.",
		func() float64 { return float64(s.rec.Snapshot().ChecksumMismatches) })
	reg.CounterFunc("bwaver_fpga_crosscheck_failures_total",
		"Sampled CPU cross-check rejections.",
		func() float64 { return float64(s.rec.Snapshot().CrossCheckFailures) })
	reg.CounterFunc("bwaver_fpga_exhausted_runs_total",
		"Runs that failed on every available device.",
		func() float64 { return float64(s.rec.Snapshot().Exhausted) })
	reg.CounterFunc("bwaver_cpu_fallbacks_total",
		"Jobs transparently rerun on the CPU baseline after a device failure.",
		func() float64 { return float64(s.rec.Snapshot().Fallbacks) })
}

// countJobs counts tracked jobs in one state.
func (s *Server) countJobs(state JobState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State == state {
			n++
		}
	}
	return n
}

// statusWriter captures the status code and byte count a handler wrote, for
// the access log and the per-route metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer so SSE responses stream through the
// instrumentation instead of buffering until the handler returns.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the per-route counter, latency histogram,
// and structured access log.
func (s *Server) instrument(route string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next(sw, r)
		elapsed := time.Since(start)
		s.mHTTPTotal.With(route, strconv.Itoa(sw.status)).Inc()
		s.mHTTPSeconds.With(route).Observe(elapsed.Seconds())
		s.log.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(elapsed)/float64(time.Millisecond),
			"remote", r.RemoteAddr,
			"request_id", obs.RequestIDFrom(r.Context()))
	})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	s.registry.WritePrometheus(w)
}

// handleTrace serves a job's span tree. Traces are live: open spans appear
// with duration_ms -1, so a running job can be watched mid-flight. Modeled
// spans carry the device's virtual-timeline offsets plus the device, attempt,
// and shard that produced them.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		jsonError(w, http.StatusNotFound, err.Error())
		return
	}
	s.mu.Lock()
	tr := job.trace
	s.mu.Unlock()
	if tr == nil {
		jsonError(w, http.StatusNotFound, fmt.Sprintf("job %d has no trace (never launched)", job.ID))
		return
	}
	writeJSON(w, http.StatusOK, tr.Snapshot())
}

// addModeledEvents folds a tagged fpga event log into span as modeled
// children, one per device command, annotated with the identity the farm
// recorded: which device ran it, on which attempt, for which shard.
func addModeledEvents(span *obs.Span, events []fpga.Event) {
	if span == nil {
		return
	}
	for _, e := range events {
		span.AddModeled(e.Name, e.Start, e.End, map[string]any{
			"device":  e.Device,
			"attempt": e.Attempt,
			"shard":   e.Shard,
		})
	}
}
