package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/fpga"
	"bwaver/internal/obs"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
)

// scrapeMetrics fetches /metrics and sanity-checks the exposition format:
// right content type, and every sample line is "name{labels} value" with a
// parseable value.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("sample line %q: bad value: %v", line, err)
		}
		if !strings.HasPrefix(line, "bwaver_") {
			t.Fatalf("sample line %q: unexpected metric prefix", line)
		}
	}
	return string(body)
}

// fetchTrace fetches a job's trace, failing unless the server answers with
// the given status.
func fetchTrace(t *testing.T, ts *httptest.Server, id, wantStatus int) obs.TraceJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + fmt.Sprintf("/api/jobs/%d/trace", id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace returned %d, want %d: %s", resp.StatusCode, wantStatus, b)
	}
	var tr obs.TraceJSON
	if wantStatus == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestMetricsAndTraceUnderFaults runs FPGA jobs against a farm with one dead
// card while goroutines hammer /metrics and the per-job trace endpoint —
// the -race configuration the acceptance criteria call for — then checks
// the scrape exposes the job, cache, queue, resilience, and per-stage kernel
// families and the trace reconstructs the host+device timeline.
func TestMetricsAndTraceUnderFaults(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	plan, err := fpga.ParseFaultPlan("seed=7,persistent=0:kernel")
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(Config{
		Devices:   2,
		FaultPlan: plan,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Background scrapers: they race against running jobs, breaker
	// transitions, and cache churn; the -race build is the assertion.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = http.Get(ts.URL + "/api/jobs/1/trace")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	for range 2 {
		submitJob(t, s, ts, map[string]string{"backend": "fpga"},
			map[string][]byte{"reference": refFasta, "reads": readsFastq})
	}
	s.Wait()
	close(stop)
	wg.Wait()

	for id := 1; id <= 2; id++ {
		if j := getJobJSON(t, ts, id); j.State != string(StateDone) {
			t.Fatalf("job %d state %s (%s), want done", id, j.State, j.Error)
		}
	}

	text := scrapeMetrics(t, ts)
	for _, want := range []string{
		`bwaver_jobs_finished_total{state="done"} 2`,
		`bwaver_job_stage_seconds_count{stage="map"} 2`,
		`bwaver_build_stage_seconds_count{stage="sa"} 1`,
		`bwaver_build_stage_seconds_count{stage="bwt"} 1`,
		`bwaver_build_stage_seconds_count{stage="encode"} 1`,
		`bwaver_index_cache_hits_total 1`,
		`bwaver_index_cache_misses_total 1`,
		`bwaver_fpga_stage_seconds_bucket{stage="kernel",le="+Inf"}`,
		`bwaver_fpga_faults_total{stage="kernel"}`,
		`bwaver_fpga_retries_total`,
		`bwaver_fpga_redistributed_shards_total`,
		`bwaver_breaker_state{device="0"}`,
		`bwaver_breaker_transitions_total{device="0",to="open"} 1`,
		`bwaver_queue_depth 0`,
		`bwaver_http_requests_total{route="POST /jobs",code="303"} 2`,
		`bwaver_http_request_seconds_count{route="GET /metrics"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// The first job's trace: a closed job root holding queue.wait, parse,
	// build (with the construction phases), and map (with the modeled
	// device timeline, tagged with the surviving device).
	tr := fetchTrace(t, ts, 1, http.StatusOK)
	if tr.ID != "job-1" {
		t.Fatalf("trace id %q", tr.ID)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "job" {
		t.Fatalf("trace roots %+v, want single job span", tr.Spans)
	}
	root := tr.Spans[0]
	if root.DurationMs < 0 {
		t.Error("job root span still open after completion")
	}
	children := map[string]obs.SpanJSON{}
	for _, c := range root.Children {
		children[c.Name] = c
	}
	for _, want := range []string{"queue.wait", "parse", "build", "map"} {
		if _, ok := children[want]; !ok {
			t.Fatalf("job span missing child %q (have %v)", want, root.Children)
		}
	}
	buildPhases := map[string]bool{}
	for _, c := range children["build"].Children {
		buildPhases[c.Name] = true
	}
	for _, want := range []string{"build.sa", "build.bwt", "build.encode"} {
		if !buildPhases[want] {
			t.Errorf("build span missing phase %q", want)
		}
	}
	modeled := 0
	for _, c := range children["map"].Children {
		if !c.Modeled {
			continue
		}
		modeled++
		if c.DurationMs < 0 {
			t.Errorf("modeled span %q open", c.Name)
		}
		// Device 0's kernel is dead, so the winning timelines all belong to
		// device 1, attempt >= 1.
		if dev, ok := c.Attrs["device"].(float64); !ok || dev != 1 {
			t.Errorf("modeled span %q device attr %v, want 1", c.Name, c.Attrs["device"])
		}
		if att, ok := c.Attrs["attempt"].(float64); !ok || att < 1 {
			t.Errorf("modeled span %q attempt attr %v", c.Name, c.Attrs["attempt"])
		}
		if _, ok := c.Attrs["shard"]; !ok {
			t.Errorf("modeled span %q missing shard attr", c.Name)
		}
	}
	if modeled == 0 {
		t.Error("map span has no modeled device events")
	}

	// A job that was never launched has no trace.
	s.createJob("cpu", 15, 50, 0, "ghost", 0, 0)
	fetchTrace(t, ts, 3, http.StatusNotFound)
}

// TestCancelDuringBuildFreesSlot is the mid-build cancellation regression:
// DELETE while the index is under construction aborts the build at the next
// phase boundary — it must not run to completion holding the only pipeline
// slot — and the freed slot immediately serves the next job.
func TestCancelDuringBuildFreesSlot(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := NewWithConfig(Config{MaxConcurrentJobs: 1})
	defer s.Close()
	entered := make(chan struct{})
	proceed := make(chan struct{})
	s.testHookDuringBuild = func(j *Job, ctx context.Context) {
		if j.ID == 1 {
			entered <- struct{}{}
			<-proceed // hold the build until the cancel has landed
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	<-entered // job 1 is inside the build closure, holding the only slot

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/jobs/1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}
	close(proceed) // construction starts now, against a canceled context

	deadline := time.Now().Add(5 * time.Second)
	for {
		if j := getJobJSON(t, ts, 1); j.State == string(StateCanceled) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job 1 still %s after cancel during build", getJobJSON(t, ts, 1).State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The slot is free: the same upload builds fresh (the canceled build
	// must not have poisoned the cache) and completes.
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	j := getJobJSON(t, ts, 2)
	if j.State != string(StateDone) {
		t.Fatalf("follow-up job state %s (%s), want done", j.State, j.Error)
	}
	if j.CacheHit {
		t.Error("follow-up job reported a cache hit off a canceled build")
	}
}

// TestCacheCanceledBuilderDoesNotPoisonWaiters exercises the single-flight
// hazard directly: the caller driving a build is canceled while a healthy
// waiter shares its entry. The waiter must not inherit the stranger's
// context error — it retries and becomes the new builder.
func TestCacheCanceledBuilderDoesNotPoisonWaiters(t *testing.T) {
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.IndexConfig{RRR: rrr.Params{BlockSize: 15, SuperblockFactor: 50}}
	key := core.CacheKey(ref, nil, cfg)
	c := newIndexCache(4)

	builderCtx, cancelBuilder := context.WithCancel(context.Background())
	builderIn := make(chan struct{})
	waiterIn := make(chan struct{})
	var calls int32

	builderErr := make(chan error, 1)
	go func() {
		_, _, err := c.getOrBuild(builderCtx, key, func(ctx context.Context) (*core.Index, error) {
			calls++
			close(builderIn)
			<-waiterIn // the waiter is parked on our entry
			cancelBuilder()
			return nil, ctx.Err()
		})
		builderErr <- err
	}()

	<-builderIn
	waiterDone := make(chan error, 1)
	go func() {
		entry, hit, err := c.getOrBuild(context.Background(), key, func(ctx context.Context) (*core.Index, error) {
			calls++
			return core.BuildIndexCtx(ctx, ref, cfg)
		})
		if err == nil && (entry == nil || entry.ix == nil) {
			err = errors.New("nil entry without error")
		}
		_ = hit
		waiterDone <- err
	}()
	// Park the waiter on the in-flight entry before releasing the builder.
	time.Sleep(20 * time.Millisecond)
	close(waiterIn)

	if err := <-builderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("builder error %v, want context.Canceled", err)
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter inherited the builder's fate: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter hung after the builder was canceled")
	}
	if calls != 2 {
		t.Errorf("build ran %d times, want 2 (canceled builder + retrying waiter)", calls)
	}
}
