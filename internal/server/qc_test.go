package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"bwaver/internal/fastx"
	"bwaver/internal/qc"
	"bwaver/internal/readsim"
)

// qcChaosPolicy is the gate the dirty-corpus test runs end to end. TrimQual
// cuts the collapsed 3' tails, MinLen then rejects the trimmed reads
// (too_short), MaxN rejects the spliced N runs (too_many_n), and pairing
// dooms each reject's mate (mate_rejected).
var qcChaosPolicy = qc.Policy{
	Tolerant: true, TrimQual: 10, MinLen: 50, MaxN: 4,
	QualitySort: true, Paired: true,
}

var qcChaosFields = map[string]string{
	"mode": "mem-pe", "backend": "cpu",
	"tolerant": "true", "trim_qual": "10", "min_len": "50", "max_n": "4",
	"quality_sort": "true",
}

// qcChaosCorpus builds the reference FASTA plus an interleaved paired FASTQ
// with >=10% malformed records, N runs, and collapsed quality tails.
func qcChaosCorpus(t *testing.T) (refFasta, corpus []byte, stats readsim.DirtyStats) {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: 60, ReadLength: 70, InsertMean: 250, InsertStdDev: 25,
		MappingRatio: 0.9, ErrorRate: 0.01, Seed: 78,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	fw := fastx.NewWriter(&fb, fastx.FASTA, false)
	if err := fw.Write(&fastx.Record{ID: "qcref", Seq: []byte(ref.String())}); err != nil {
		t.Fatal(err)
	}
	fw.Close()
	reads := make([]readsim.FastqRead, 0, 2*len(pairs))
	for _, p := range pairs {
		reads = append(reads,
			readsim.FastqRead{ID: p.ID + "/1", Seq: []byte(p.R1.String())},
			readsim.FastqRead{ID: p.ID + "/2", Seq: []byte(p.R2.String())})
	}
	var cb bytes.Buffer
	stats, err = readsim.WriteDirtyFastq(&cb, reads, readsim.DirtyConfig{
		MalformedFrac: 0.15, NFrac: 0.12, QualDrop: 0.4, Seed: 79,
	})
	if err != nil {
		t.Fatal(err)
	}
	if 10*stats.Malformed < stats.Records {
		t.Fatalf("corpus only %d/%d malformed, want >= 10%%", stats.Malformed, stats.Records)
	}
	return fb.Bytes(), cb.Bytes(), stats
}

// checkQCReport compares a served report against the offline ground truth.
func checkQCReport(t *testing.T, label string, got *qc.Report, want qc.Report) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no qc_report", label)
	}
	if got.Attempted != want.Attempted || got.Passed != want.Passed ||
		got.Malformed != want.Malformed || got.TrimmedBases != want.TrimmedBases {
		t.Errorf("%s report = %+v, want %+v", label, *got, want)
	}
	if !reflect.DeepEqual(got.Rejected, want.Rejected) {
		t.Errorf("%s rejected = %v, want %v", label, got.Rejected, want.Rejected)
	}
	if got.Attempted != got.Passed+got.Malformed+got.RejectedTotal() {
		t.Errorf("%s accounting identity broken: %+v", label, *got)
	}
}

// TestQCDirtyCorpusEndToEnd is the chaos drill: a >=10%-malformed interleaved
// paired corpus is mapped through the QC gate on both backends and compared
// against a pre-cleaned control; reject accounting must survive a journal
// replay bit for bit and surface on the job JSON, the stream, /api/stats and
// /metrics.
func TestQCDirtyCorpusEndToEnd(t *testing.T) {
	refFasta, corpus, _ := qcChaosCorpus(t)

	// Ground truth: the same policy applied offline.
	offline, err := qc.Ingest(bytes.NewReader(corpus), qcChaosPolicy)
	if err != nil {
		t.Fatal(err)
	}
	want := offline.Report
	if want.Passed == 0 || want.Malformed == 0 || want.RejectedTotal() == 0 {
		t.Fatalf("degenerate corpus: %+v", want)
	}
	for _, reason := range []string{qc.ReasonTooShort, qc.ReasonTooManyN, qc.ReasonMateRejected} {
		if want.Rejected[reason] == 0 {
			t.Fatalf("corpus exercises no %s rejections: %v", reason, want.Rejected)
		}
	}
	if want.Passed%2 != 0 {
		t.Fatalf("paired gate let an odd survivor count through: %d", want.Passed)
	}

	stateDir := t.TempDir()
	s, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	upload := map[string][]byte{"reference": refFasta, "reads": corpus}
	cpuFields := qcChaosFields
	fpgaFields := map[string]string{}
	for k, v := range qcChaosFields {
		fpgaFields[k] = v
	}
	fpgaFields["backend"] = "fpga"
	cpuLoc := submitJob(t, s, ts, cpuFields, upload)
	fpgaLoc := submitJob(t, s, ts, fpgaFields, upload)

	// Control: the offline survivors, already trimmed/sorted/cleaned, mapped
	// without any QC. Identical output proves the gate is transparent to the
	// mapper.
	var clean bytes.Buffer
	cw := fastx.NewWriter(&clean, fastx.FASTA, false)
	for i, seq := range offline.Seqs {
		if err := cw.Write(&fastx.Record{ID: offline.IDs[i], Seq: []byte(seq.String())}); err != nil {
			t.Fatal(err)
		}
	}
	cw.Close()
	ctrlLoc := submitJob(t, s, ts,
		map[string]string{"mode": "mem-pe", "backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": clean.Bytes()})
	s.Wait()

	cpuSAM := fetchSAM(t, ts, cpuLoc, want.Passed)
	fpgaSAM := fetchSAM(t, ts, fpgaLoc, want.Passed)
	ctrlSAM := fetchSAM(t, ts, ctrlLoc, want.Passed)
	if cpuSAM != fpgaSAM {
		t.Error("CPU and FPGA backends disagree on the QC-gated corpus")
	}
	if cpuSAM != ctrlSAM {
		t.Error("QC-gated run differs from the pre-cleaned control")
	}

	// Per-job accounting on the job JSON.
	cpuID := strings.TrimPrefix(cpuLoc, "/jobs/")
	var cpuIDn int
	fmt.Sscanf(cpuID, "%d", &cpuIDn)
	job := getJobJSON(t, ts, cpuIDn)
	checkQCReport(t, "cpu job", job.QCReport, want)
	if job.QC == nil || !job.QC.Tolerant || job.QC.MinLen != 50 {
		t.Errorf("job JSON policy = %+v", job.QC)
	}

	// The NDJSON stream leads with one reject row per dropped read, reasons
	// clamped to the fixed enum.
	req, _ := http.NewRequest("GET", ts.URL+"/api/jobs/"+cpuID+"/stream", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	streamBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rejectRows, mapRows int
	for _, line := range strings.Split(strings.TrimSpace(string(streamBody)), "\n") {
		switch {
		case strings.Contains(line, `"event":"qc_reject"`):
			if mapRows > 0 {
				t.Error("qc_reject row after a mapping row; rejects must lead the stream")
			}
			rejectRows++
			ok := false
			for _, reason := range append(qc.Reasons(), "invalid") {
				if strings.Contains(line, `"reason":"`+reason+`"`) {
					ok = true
				}
			}
			if !ok {
				t.Errorf("reject row with out-of-enum reason: %s", line)
			}
		case strings.Contains(line, `"event":`): // terminal summary
		default:
			mapRows++
		}
	}
	if rejectRows != len(offline.Rejects) {
		t.Errorf("stream carries %d reject rows, want %d", rejectRows, len(offline.Rejects))
	}
	if mapRows != want.Passed {
		t.Errorf("stream carries %d mapping rows, want %d", mapRows, want.Passed)
	}

	// Server-wide totals: the two gated jobs, and nothing from the control.
	st := getStats(t, ts)
	if st.QC.Attempted != 2*want.Attempted || st.QC.Malformed != 2*want.Malformed ||
		st.QC.Passed != 2*want.Passed || st.QC.TrimmedBases != 2*want.TrimmedBases {
		t.Errorf("stats qc block = %+v, want twice %+v", st.QC, want)
	}
	for reason, n := range want.Rejected {
		if st.QC.Rejected[reason] != 2*n {
			t.Errorf("stats qc rejected[%s] = %d, want %d", reason, st.QC.Rejected[reason], 2*n)
		}
	}

	// /metrics exports the fixed-enum families with matching values.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for reason, n := range want.Rejected {
		line := fmt.Sprintf(`bwaver_qc_rejected_total{reason=%q} %d`, reason, 2*n)
		if !strings.Contains(string(metrics), line) {
			t.Errorf("metrics missing %q", line)
		}
	}
	if line := fmt.Sprintf("bwaver_qc_malformed_total %d", 2*want.Malformed); !strings.Contains(string(metrics), line) {
		t.Errorf("metrics missing %q", line)
	}

	// Crash-replay the journal: the accounting must come back identical.
	crashed := snapshotDir(t, stateDir)
	s.Close()
	s2, err := Open(Config{StateDir: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	job2 := getJobJSON(t, ts2, cpuIDn)
	checkQCReport(t, "replayed job", job2.QCReport, want)
	st2 := getStats(t, ts2)
	if !reflect.DeepEqual(st2.QC, st.QC) {
		t.Errorf("replayed stats qc block = %+v, want %+v", st2.QC, st.QC)
	}
	s2.Wait()
}
