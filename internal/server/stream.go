package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/qc"
	"bwaver/internal/sam"
)

// Streamed results. The two-pass flow already produces mappings batch by
// batch; this file stops throwing that incrementality away at the HTTP layer.
// As the mapping loop completes each batch, the job's emitter appends one
// NDJSON line per read to the job's result stream and the matching TSV rows
// to the results file (durable mode) or buffer (stateless). GET
// /api/jobs/{id}/stream serves the stream as Server-Sent Events — one event
// per read, ids are 1-based line numbers, so a dropped client resumes with
// Last-Event-ID — or as raw NDJSON when the client asks for
// application/x-ndjson. A terminal event (done/failed/canceled) always closes
// the stream.
//
// Memory: in durable mode the stream spills to <state-dir>/results/
// job-N.ndjson as batches complete and subscribers tail the file, so a job
// holds O(batch) result bytes no matter how many reads it maps; the peak is
// recorded per job (peak_result_buffer_bytes). Stateless servers keep the
// stream in memory — the pre-streaming behavior, fine for demo-scale jobs.

// DefaultStreamBatch is the default result-streaming batch size: how many
// reads are mapped between stream flushes.
const DefaultStreamBatch = 8192

// streamHeartbeat is how often an idle SSE connection gets a comment line so
// proxies do not reap it.
const streamHeartbeat = 15 * time.Second

// resultStream is a job's append-only result log plus its subscriber wakeup.
// Appends are whole batches of NDJSON lines, so the committed length is
// always line-aligned; subscribers track their own byte offset and line
// count, which keeps the stream itself O(1) memory in durable mode.
type resultStream struct {
	mu     sync.Mutex
	notify chan struct{} // closed and replaced on every append/close
	path   string        // durable spill file; "" = in-memory
	buf    []byte        // in-memory log when path == ""
	f      *os.File      // append handle, durable mode
	bytes  int64         // committed bytes
	lines  int           // committed NDJSON lines (== last event id)
	closed bool
	// terminal is the closing event: kind done/failed/canceled plus a JSON
	// summary payload.
	terminalKind string
	terminalData []byte
}

func newResultStream(path string) *resultStream {
	return &resultStream{path: path, notify: make(chan struct{})}
}

// start truncates any stale spill (a re-run after a crash rewrites the log
// from scratch, keeping event ids aligned with the deterministic re-mapping).
func (st *resultStream) start() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.path == "" {
		return nil
	}
	f, err := os.Create(st.path)
	if err != nil {
		return err
	}
	st.f = f
	st.bytes, st.lines = 0, 0
	return nil
}

// append commits a batch of NDJSON lines and wakes subscribers.
func (st *resultStream) append(data []byte, lines int) error {
	if len(data) == 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f != nil {
		if _, err := st.f.Write(data); err != nil {
			return err
		}
	} else {
		st.buf = append(st.buf, data...)
	}
	st.bytes += int64(len(data))
	st.lines += lines
	close(st.notify)
	st.notify = make(chan struct{})
	return nil
}

// close seals the stream with its terminal event. Safe to call once per
// stream; later calls are ignored.
func (st *resultStream) close(kind string, data []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	st.terminalKind, st.terminalData = kind, data
	if st.f != nil {
		st.f.Sync()
		st.f.Close()
		st.f = nil
	}
	close(st.notify)
	st.notify = make(chan struct{})
}

// restoreClosed marks a replayed terminal job's stream as already complete,
// backed by whatever spill survived the restart (line count recovered by one
// fixed-buffer scan, so attaching to a huge replayed job stays O(1) memory; a
// missing file just means no replayable history, only the terminal event).
func (st *resultStream) restoreClosed(kind string, data []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closed = true
	st.terminalKind, st.terminalData = kind, data
	if st.path == "" {
		return
	}
	f, err := os.Open(st.path)
	if err != nil {
		return
	}
	defer f.Close()
	var size int64
	lines := 0
	buf := make([]byte, 64<<10)
	for {
		n, err := f.Read(buf)
		size += int64(n)
		lines += bytes.Count(buf[:n], []byte{'\n'})
		if err == io.EOF {
			break
		}
		if err != nil {
			return
		}
	}
	st.bytes = size
	st.lines = lines
}

// snapshot returns the committed extent and terminal state.
func (st *resultStream) snapshot() (committed int64, lines int, closed bool, kind string, data []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes, st.lines, st.closed, st.terminalKind, st.terminalData
}

// waitCh returns the channel that will be closed on the next append or close.
func (st *resultStream) waitCh() chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.notify
}

// readCommitted returns committed bytes in [off, off+max), from the spill
// file or the in-memory log. The caller owns the returned slice.
func (st *resultStream) readCommitted(off int64, max int) ([]byte, error) {
	st.mu.Lock()
	committed := st.bytes
	path := st.path
	var mem []byte
	if path == "" {
		mem = st.buf
	}
	st.mu.Unlock()
	if off >= committed {
		return nil, nil
	}
	n := committed - off
	if int64(max) < n {
		n = int64(max)
	}
	if path == "" {
		out := make([]byte, n)
		copy(out, mem[off:off+n])
		return out, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make([]byte, n)
	if _, err := f.ReadAt(out, off); err != nil {
		return nil, err
	}
	return out, nil
}

// streamName is the spill file for a job's NDJSON result stream, next to its
// TSV under the state dir's results/ directory.
func streamName(id int) string {
	return filepath.Join(resultsDir, fmt.Sprintf("job-%d.ndjson", id))
}

// ensureStreamLocked lazily attaches a job's result stream; s.mu must be
// held. A stream created for an already-terminal job (a replayed one, or a
// pre-streaming job queried after the fact) comes back closed, serving the
// surviving spill plus the terminal event.
func (s *Server) ensureStreamLocked(job *Job) *resultStream {
	if job.stream == nil {
		path := ""
		if s.journal != nil {
			path = s.journal.abs(streamName(job.ID))
		}
		job.stream = newResultStream(path)
		if job.State.terminal() {
			kind, data := terminalEventLocked(job)
			job.stream.restoreClosed(kind, data)
		}
	}
	return job.stream
}

// terminalEventLocked renders a job's closing stream event; s.mu must be
// held.
func terminalEventLocked(job *Job) (kind string, data []byte) {
	kind = string(job.State)
	payload := map[string]any{
		"state":  string(job.State),
		"reads":  job.Reads,
		"mapped": job.Mapped,
	}
	if job.Error != "" {
		payload["error"] = job.Error
	}
	data, _ = json.Marshal(payload)
	return kind, data
}

// closeJobStream seals a terminal job's stream (creating it on the spot if no
// subscriber ever asked) so every waiting subscriber receives the terminal
// event instead of hanging.
func (s *Server) closeJobStream(job *Job) {
	s.mu.Lock()
	st := s.ensureStreamLocked(job)
	kind, data := terminalEventLocked(job)
	s.mu.Unlock()
	st.close(kind, data)
}

// exactRow is the NDJSON wire form of one exact-matching result. Positions
// are the same joined, contig-resolved strings the TSV carries, so the two
// representations are field-for-field identical.
type exactRow struct {
	Read        string `json:"read"`
	Mapped      bool   `json:"mapped"`
	FwCount     int    `json:"fw_count"`
	FwPositions string `json:"fw_positions"`
	RcCount     int    `json:"rc_count"`
	RcPositions string `json:"rc_positions"`
}

// approxRow is the NDJSON wire form of one mismatch-budget result.
type approxRow struct {
	Read           string `json:"read"`
	Mapped         bool   `json:"mapped"`
	BestMismatches int    `json:"best_mismatches"`
	Occurrences    int    `json:"occurrences"`
}

// memRow is the NDJSON wire form of one seed-and-extend (mode=mem) result.
// The TSV representation of a mem job is the SAM text itself, so the row
// carries the record's placement fields plus the scoring the SAM tags hold.
type memRow struct {
	Read    string `json:"read"`
	Mapped  bool   `json:"mapped"`
	Flag    int    `json:"flag"`
	RName   string `json:"rname,omitempty"`
	Pos     int    `json:"pos,omitempty"` // 1-based SAM POS
	MapQ    int    `json:"mapq"`
	CIGAR   string `json:"cigar,omitempty"`
	TLen    int    `json:"tlen,omitempty"`
	Score   int    `json:"score"`
	NM      int    `json:"nm"`
	Rescued bool   `json:"rescued,omitempty"`
}

// rejectRow is the NDJSON wire form of one QC-dropped read. The event
// discriminator separates it from mapping rows, which carry none; reason is
// always one of the fixed qc enum codes, so stream consumers can aggregate
// without unbounded keys.
type rejectRow struct {
	Event  string `json:"event"`
	Index  int    `json:"index"`
	ID     string `json:"id,omitempty"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
}

// qcRejects emits the ingest-stage reject rows onto the job's NDJSON stream,
// before any mapping batch. Reasons outside the fixed enum (impossible from
// the gate, conceivable from a tampered journal) are clamped so the stream
// never carries attacker-minted codes.
func (em *jobEmitter) qcRejects(rejects []qc.Reject) error {
	enc := json.NewEncoder(&em.scratchND)
	for _, rej := range rejects {
		reason := rej.Reason
		if !qc.ValidReason(reason) {
			reason = "invalid"
		}
		row := rejectRow{
			Event: "qc_reject", Index: rej.Index,
			ID: sanitizeID(rej.ID), Reason: reason, Detail: rej.Detail,
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return em.flushBatch(len(rejects))
}

// memRowFrom renders one mapped read's stream row from its SAM record and
// pipeline result.
func memRowFrom(rec sam.Record, res core.MemResult) memRow {
	row := memRow{
		Read:   rec.QName,
		Mapped: !rec.Unmapped(),
		Flag:   int(rec.Flag),
	}
	if row.Mapped {
		row.RName = rec.RName
		row.Pos = rec.Pos
		row.MapQ = int(rec.MapQ)
		row.CIGAR = rec.CIGAR
		row.TLen = rec.TLen
		row.Score = res.Best.Score
		row.NM = res.Best.NM
		row.Rescued = res.Rescued
	}
	return row
}

// jobEmitter receives mapping results batch by batch and fans them out to
// the job's two result representations: the TSV (file-backed in durable
// mode, buffered otherwise) and the NDJSON stream. It tracks the peak bytes
// buffered in memory for one batch, the figure that proves the O(batch)
// claim.
type jobEmitter struct {
	s      *Server
	job    *Job
	stream *resultStream

	tsvBuf  *bytes.Buffer // stateless accumulation
	tsvFile *os.File      // durable incremental TSV
	tsvPath string
	tsvSize int64

	scratchTSV bytes.Buffer // per-batch row staging, reused
	scratchND  bytes.Buffer

	mapped int
	rows   int
	peak   int
}

// newEmitter opens a job's result sinks. In durable mode the TSV lands
// directly at its journal-contract path (results/job-N.tsv) and is fsync'd by
// finish before the done record that references it is appended.
func (s *Server) newEmitter(job *Job) (*jobEmitter, error) {
	s.mu.Lock()
	st := s.ensureStreamLocked(job)
	s.mu.Unlock()
	if err := st.start(); err != nil {
		return nil, fmt.Errorf("opening result stream: %w", err)
	}
	em := &jobEmitter{s: s, job: job, stream: st}
	if s.journal != nil {
		em.tsvPath = s.journal.abs(resultsName(job.ID))
		f, err := os.Create(em.tsvPath)
		if err != nil {
			return nil, fmt.Errorf("opening results file: %w", err)
		}
		em.tsvFile = f
	} else {
		em.tsvBuf = &bytes.Buffer{}
	}
	return em, nil
}

// flushBatch commits the staged TSV rows and NDJSON lines for one batch.
func (em *jobEmitter) flushBatch(lines int) error {
	if staged := em.scratchTSV.Len() + em.scratchND.Len(); staged > em.peak {
		em.peak = staged
	}
	if em.tsvFile != nil {
		if _, err := em.tsvFile.Write(em.scratchTSV.Bytes()); err != nil {
			return err
		}
	} else {
		em.tsvBuf.Write(em.scratchTSV.Bytes())
	}
	em.tsvSize += int64(em.scratchTSV.Len())
	if err := em.stream.append(em.scratchND.Bytes(), lines); err != nil {
		return err
	}
	em.rows += lines
	em.s.mStreamEvents.With().Add(float64(lines))
	em.scratchTSV.Reset()
	em.scratchND.Reset()
	return nil
}

// exactBatch emits one exact-matching batch: ids and reads are the full job
// slices, results covers [start, start+len(results)).
func (em *jobEmitter) exactBatch(start int, ids []string, reads []dna.Seq, results []core.MapResult, contigs *core.ContigSet) error {
	if start == 0 {
		fmt.Fprintln(&em.scratchTSV, "read\tmapped\tfw_count\tfw_positions\trc_count\trc_positions")
	}
	enc := json.NewEncoder(&em.scratchND)
	for i, res := range results {
		g := start + i
		if res.Mapped() {
			em.mapped++
		}
		row := exactRow{
			Read:        sanitizeID(ids[g]),
			Mapped:      res.Mapped(),
			FwCount:     res.Forward.Count(),
			FwPositions: joinPositions(contigs, res.ForwardPositions, len(reads[g])),
			RcCount:     res.Reverse.Count(),
			RcPositions: joinPositions(contigs, res.ReversePositions, len(reads[g])),
		}
		fmt.Fprintf(&em.scratchTSV, "%s\t%t\t%d\t%s\t%d\t%s\n",
			row.Read, row.Mapped, row.FwCount, row.FwPositions, row.RcCount, row.RcPositions)
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return em.flushBatch(len(results))
}

// approxBatch emits one mismatch-budget batch.
func (em *jobEmitter) approxBatch(start int, ids []string, rows []approxRow) error {
	if start == 0 {
		fmt.Fprintln(&em.scratchTSV, "read\tmapped\tbest_mismatches\toccurrences")
	}
	enc := json.NewEncoder(&em.scratchND)
	for _, row := range rows {
		if row.Mapped {
			em.mapped++
		}
		fmt.Fprintf(&em.scratchTSV, "%s\t%t\t%d\t%d\n",
			row.Read, row.Mapped, row.BestMismatches, row.Occurrences)
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return em.flushBatch(len(rows))
}

// memBatch emits one seed-and-extend batch: samText is the batch's rendered
// SAM lines (the first batch includes the header, straight from the job's
// one sam.Writer), rows the matching stream rows — one per read, so stream
// event ids still count reads even though the SAM text holds header lines.
func (em *jobEmitter) memBatch(samText []byte, rows []memRow) error {
	em.scratchTSV.Write(samText)
	enc := json.NewEncoder(&em.scratchND)
	for _, row := range rows {
		if row.Mapped {
			em.mapped++
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return em.flushBatch(len(rows))
}

// finish seals the result sinks after a successful mapping run: the durable
// TSV is fsync'd (the done record that references it follows in finishJob)
// and the job is pointed at whichever representation it owns. The stream's
// terminal event is emitted later by finishJob, which knows the final state.
func (em *jobEmitter) finish() error {
	em.s.mu.Lock()
	em.job.PeakResultBuf = em.peak
	em.s.mu.Unlock()
	if em.tsvFile != nil {
		if err := em.tsvFile.Sync(); err != nil {
			em.tsvFile.Close()
			return fmt.Errorf("persisting results: %w", err)
		}
		if err := em.tsvFile.Close(); err != nil {
			return fmt.Errorf("persisting results: %w", err)
		}
		em.tsvFile = nil
		em.s.mu.Lock()
		em.job.resultsPath = em.tsvPath
		em.job.resultsSize = em.tsvSize
		em.s.mu.Unlock()
		return nil
	}
	em.s.mu.Lock()
	em.job.results = em.tsvBuf.Bytes()
	em.s.mu.Unlock()
	return nil
}

// discard abandons the sinks after a failed or canceled run, removing any
// partial durable files; the journal's non-done record makes a restart re-run
// the job from its payloads anyway.
func (em *jobEmitter) discard() {
	em.s.mu.Lock()
	em.job.PeakResultBuf = em.peak
	em.s.mu.Unlock()
	if em.tsvFile != nil {
		em.tsvFile.Close()
		em.tsvFile = nil
		os.Remove(em.tsvPath)
	}
}

// parseLastEventID extracts the resume point: the Last-Event-ID header (SSE
// reconnects send it automatically) or an explicit ?from=N.
func parseLastEventID(r *http.Request) int {
	v := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("from"); q != "" {
		v = q
	}
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// wantsNDJSON reports whether the client asked for raw NDJSON instead of SSE
// framing.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamReadChunk bounds how many committed bytes one handler iteration pulls
// (a starting point: handleStream grows its window when a single row is
// wider). A var so tests can shrink it to exercise the clipping paths.
var streamReadChunk = 1 << 20

// handleStream serves a job's results as they are produced. SSE framing by
// default: one `event: result` per read with `id:` the 1-based row number and
// `data:` its NDJSON line, closed by a terminal done/failed/canceled event
// whose data is the job summary. `Last-Event-ID: N` (or ?from=N) resumes
// after row N — after a crash the replayed job re-maps deterministically, so
// resumed rows are bit-identical to the ones the client already holds. With
// `Accept: application/x-ndjson` the same lines are sent unframed, terminated
// by a {"event": ...} summary line.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		jsonError(w, http.StatusNotFound, err.Error())
		return
	}
	s.mu.Lock()
	st := s.ensureStreamLocked(job)
	s.mu.Unlock()
	s.mStreamSubscribers.With().Add(1)
	defer s.mStreamSubscribers.With().Add(-1)

	ndjson := wantsNDJSON(r)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Accel-Buffering", "no")
	}
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	flush()

	skip := parseLastEventID(r)
	line := 0 // rows scanned so far (event id of the last scanned row)
	var off int64
	readMax := streamReadChunk
	heartbeat := time.NewTicker(streamHeartbeat)
	defer heartbeat.Stop()
	for {
		committed, _, closed, kind, data := st.snapshot()
		if off >= committed {
			if closed {
				if ndjson {
					fmt.Fprintf(w, "{\"event\":%q,\"summary\":%s}\n", kind, data)
				} else {
					fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", line+1, kind, data)
				}
				flush()
				return
			}
			select {
			case <-st.waitCh():
			case <-heartbeat.C:
				if !ndjson {
					fmt.Fprint(w, ": keepalive\n\n")
					flush()
				}
			case <-r.Context().Done():
				return
			}
			continue
		}
		chunk, err := st.readCommitted(off, readMax)
		if err != nil {
			s.log.Error("result stream read failed", "job", job.ID, "err", err)
			return
		}
		// Commits are whole batches of lines, so the committed extent always
		// ends on a line boundary — but the read window may clip mid-line
		// whenever the subscriber is more than readMax bytes behind. A torn
		// tail is therefore normal: leave it unconsumed (off stays at the line
		// start) and let the next readCommitted from off pick it up whole.
		windowClipped := len(chunk) == readMax
		progressed := false
		for len(chunk) > 0 {
			nl := bytes.IndexByte(chunk, '\n')
			if nl < 0 {
				if windowClipped {
					// If the window held no complete line at all, a single
					// row is wider than it: grow so the re-read makes
					// progress instead of spinning.
					if !progressed {
						readMax *= 2
					}
					break
				}
				if closed {
					// A crash-torn tail of a restored spill; no append will
					// ever complete it, so skip to the terminal event.
					off = committed
					break
				}
				s.log.Error("result stream holds a torn line", "job", job.ID)
				return
			}
			progressed = true
			row := chunk[:nl]
			off += int64(nl + 1)
			chunk = chunk[nl+1:]
			line++
			if line <= skip {
				continue
			}
			if ndjson {
				w.Write(row)
				w.Write([]byte{'\n'})
			} else {
				fmt.Fprintf(w, "id: %d\nevent: result\ndata: %s\n\n", line, row)
			}
		}
		flush()
		if r.Context().Err() != nil {
			return
		}
	}
}
