package server

import (
	"fmt"
	"io"
	"strconv"

	"bwaver/internal/dna"
	"bwaver/internal/qc"
)

// QC policy wiring: per-job quality-control parameters arrive with the
// submission (multipart form fields or the chunked-ingest JSON body), are
// validated against the fixed qc reason/threshold rules, journaled with the
// job spec, and applied at parse time. Reject accounting flows the other way:
// per-job reports land in the journal's terminal records (so replay is
// accounting-identical), in the server-wide qcTotals behind /api/stats and
// /metrics, and on the NDJSON stream as one reject row per dropped read.

// qcParams is the wire form of a QC policy on the chunked-ingest JSON body.
// Pointers distinguish "absent" from zero, like the b/sf parameters.
type qcParams struct {
	MinLen      *int     `json:"min_len"`
	MaxEE       *float64 `json:"max_ee"`
	MaxN        *int     `json:"max_n"`
	TrimQual    *int     `json:"trim_qual"`
	QualitySort *bool    `json:"quality_sort"`
	PhredOffset *int     `json:"phred_offset"`
	Tolerant    *bool    `json:"tolerant"`
}

// policy folds the JSON parameters into a qc.Policy; mode decides pairing.
func (p qcParams) policy(mode string) (qc.Policy, error) {
	pol := qc.Policy{Paired: mode == ModeMemPE}
	if p.MinLen != nil {
		pol.MinLen = *p.MinLen
	}
	if p.MaxEE != nil {
		pol.MaxEE = *p.MaxEE
	}
	if p.MaxN != nil {
		pol.MaxN = *p.MaxN
	}
	if p.TrimQual != nil {
		pol.TrimQual = *p.TrimQual
	}
	if p.QualitySort != nil {
		pol.QualitySort = *p.QualitySort
	}
	if p.PhredOffset != nil {
		pol.PhredOffset = *p.PhredOffset
	}
	if p.Tolerant != nil {
		pol.Tolerant = *p.Tolerant
	}
	if err := pol.Validate(); err != nil {
		return qc.Policy{}, err
	}
	return pol, nil
}

// qcPolicyFromForm reads the QC fields off a form-style submission (the
// multipart upload and the urlencoded chunked-create variant share it).
// Absent fields leave the zero (inactive) policy; mode decides pairing.
func qcPolicyFromForm(get func(string) string, mode string) (qc.Policy, error) {
	pol := qc.Policy{Paired: mode == ModeMemPE}
	intField := func(name string, dst *int) error {
		v := get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("parameter %s: %w", name, err)
		}
		*dst = n
		return nil
	}
	boolField := func(name string, dst *bool) error {
		v := get(name)
		if v == "" {
			return nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("parameter %s: %w", name, err)
		}
		*dst = b
		return nil
	}
	if err := intField("min_len", &pol.MinLen); err != nil {
		return qc.Policy{}, err
	}
	if v := get("max_ee"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return qc.Policy{}, fmt.Errorf("parameter max_ee: %w", err)
		}
		pol.MaxEE = f
	}
	if err := intField("max_n", &pol.MaxN); err != nil {
		return qc.Policy{}, err
	}
	if err := intField("trim_qual", &pol.TrimQual); err != nil {
		return qc.Policy{}, err
	}
	if err := intField("phred_offset", &pol.PhredOffset); err != nil {
		return qc.Policy{}, err
	}
	if err := boolField("quality_sort", &pol.QualitySort); err != nil {
		return qc.Policy{}, err
	}
	if err := boolField("tolerant", &pol.Tolerant); err != nil {
		return qc.Policy{}, err
	}
	if err := pol.Validate(); err != nil {
		return qc.Policy{}, err
	}
	return pol, nil
}

// sanitizeQCReport clamps a report read back from the journal to the fixed
// reason enum — the cardinality guard. The gate only ever writes enum
// reasons, so anything else means a hand-edited or corrupted journal; those
// counts are folded under "invalid" instead of minting new stats keys.
func sanitizeQCReport(rep *qc.Report) {
	if rep == nil || len(rep.Rejected) == 0 {
		return
	}
	invalid := 0
	for reason, n := range rep.Rejected {
		if !qc.ValidReason(reason) {
			invalid += n
			delete(rep.Rejected, reason)
		}
	}
	if invalid > 0 {
		rep.Rejected["invalid"] += invalid
	}
}

// ingestReads parses the reads payload through the job's QC policy: tolerant
// or strict decode, trim, gate, optional stable quality-sort. The zero
// policy takes the plain strict path, byte-identical to the pre-QC parser.
func ingestReads(r io.Reader, pol qc.Policy) ([]dna.Seq, []string, []qc.Reject, *qc.Report, error) {
	if !pol.Active() {
		seqs, ids, err := parseReads(r)
		return seqs, ids, nil, nil, err
	}
	res, err := qc.Ingest(r, pol)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("reads: %w", err)
	}
	if len(res.Seqs) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("reads: no records survived QC (%d attempted, %d malformed, %d rejected)",
			res.Report.Attempted, res.Report.Malformed, res.Report.RejectedTotal())
	}
	rep := res.Report
	return res.Seqs, res.IDs, res.Rejects, &rep, nil
}
