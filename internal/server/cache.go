package server

import (
	"container/list"
	"context"
	"errors"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/fpga"
)

// Content-addressed index cache. The paper's central performance argument is
// that index construction and transfer are a fixed overhead amortized over
// the read count; a service that rebuilds the BWT/SA and RRR wavelet tree
// for every job throws that amortization away. The cache keys built indexes
// by core.CacheKey (a hash of the reference bases, contig layout, and build
// parameters), serves repeats from an LRU, and deduplicates concurrent
// builds of the same key so a burst of jobs for one reference builds once.

// cacheEntry is one cached index plus the kernel programmed with it.
// The entry is created before its build starts; ready is closed when ix/err
// are final, so later arrivals wait on the in-flight build instead of
// starting their own (single-flight).
type cacheEntry struct {
	key       string
	ready     chan struct{}
	ix        *core.Index
	err       error
	buildTime time.Duration
	sizeBytes int

	// kmu guards the lazily programmed farm; farmRuns counts mapping
	// runs so the simulated index transfer is charged only on the first.
	kmu      sync.Mutex
	farm     *fpga.Farm
	farmRuns int
}

// farmFor returns the farm programmed with the entry's index, programming
// the devices on first use. resident reports whether an earlier run already
// paid the index transfer into BRAM. Farms built here share the devices'
// breakers and the server's stats recorder, so health and counters are
// global across cached indexes.
func (e *cacheEntry) farmFor(devices []*fpga.Device, opts fpga.FarmOptions) (f *fpga.Farm, resident bool, err error) {
	e.kmu.Lock()
	defer e.kmu.Unlock()
	if e.farm == nil {
		farm, err := fpga.NewFarmOpts(devices, e.ix, opts)
		if err != nil {
			return nil, false, err
		}
		e.farm = farm
	}
	resident = e.farmRuns > 0
	e.farmRuns++
	return e.farm, resident, nil
}

// indexCache is a bounded LRU of cacheEntry values with single-flight builds,
// optionally backed by a disk spill directory of serialized indexes.
type indexCache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*list.Element // value: *cacheEntry
	order     *list.List               // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
	diskHits  uint64

	// dir, when set, is the spill directory: fresh builds are saved there
	// (atomic write + checksum trailer via core.SaveFile) and misses try a
	// LoadFile before rebuilding, so LRU-evicted or post-restart indexes come
	// back without paying construction again. A corrupt spill file fails its
	// checksum, is logged and removed, and the index is rebuilt from source.
	dir string
	log *slog.Logger
}

func newIndexCache(capacity int) *indexCache {
	if capacity < 1 {
		capacity = 1
	}
	return &indexCache{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
	}
}

// getOrBuild returns the entry for key, running build on a miss. Concurrent
// callers for the same key share one build; waiters abort when ctx is done.
// hit reports whether the entry pre-existed (including an in-flight build —
// the caller skipped construction either way). Failed builds are not cached.
//
// build receives the builder's context so index construction is cancellable.
// That makes one hazard possible: the caller driving the build gets canceled
// while healthy waiters share its entry. The failed entry is removed from the
// map before ready is closed, and waiters that see a context-shaped error
// while their own context is still live loop back to a fresh lookup — one of
// them becomes the new builder instead of inheriting a stranger's
// cancellation.
func (c *indexCache) getOrBuild(ctx context.Context, key string, build func(context.Context) (*core.Index, error)) (entry *cacheEntry, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			e := el.Value.(*cacheEntry)
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
			if e.err != nil {
				if isContextError(e.err) && ctx.Err() == nil {
					// The builder was canceled, not the index: retry under
					// our own live context.
					continue
				}
				return nil, true, e.err
			}
			return e, true, nil
		}
		c.misses++
		e := &cacheEntry{key: key, ready: make(chan struct{})}
		el := c.order.PushFront(e)
		c.entries[key] = el
		c.evictOverflowLocked()
		c.mu.Unlock()

		start := time.Now()
		fromDisk := false
		if ix, ok := c.loadSpill(key); ok {
			e.ix, fromDisk = ix, true
			c.mu.Lock()
			c.diskHits++
			c.mu.Unlock()
		} else {
			e.ix, e.err = build(ctx)
		}
		e.buildTime = time.Since(start)
		if e.ix != nil {
			e.sizeBytes = e.ix.SizeBytes()
		}
		if e.err != nil {
			// Drop the failed entry so a corrected retry rebuilds — before
			// ready is closed, so retrying waiters cannot re-find it. The
			// entry may already have been evicted by the LRU; only remove
			// our own.
			c.mu.Lock()
			if cur, ok := c.entries[key]; ok && cur == el {
				c.order.Remove(el)
				delete(c.entries, key)
			}
			c.mu.Unlock()
			close(e.ready)
			return nil, false, e.err
		}
		if !fromDisk {
			c.saveSpill(key, e.ix)
		}
		close(e.ready)
		// A disk-restored index counts as a hit: the caller skipped
		// construction, so build-stage figures should not include it.
		return e, fromDisk, nil
	}
}

// setSpill enables the disk tier rooted at dir.
func (c *indexCache) setSpill(dir string, log *slog.Logger) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dir = dir
	c.log = log
}

// loadSpill tries to restore key's index from the spill directory. A file
// that fails its integrity check (or any other read error) is removed so the
// fresh build can replace it — corruption degrades to a rebuild, never to a
// failed job.
func (c *indexCache) loadSpill(key string) (*core.Index, bool) {
	c.mu.Lock()
	dir, log := c.dir, c.log
	c.mu.Unlock()
	if dir == "" {
		return nil, false
	}
	path := filepath.Join(dir, key+".bwx")
	ix, err := core.LoadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			if log != nil {
				log.Warn("rejecting unreadable spilled index; rebuilding", "path", path, "err", err)
			}
			os.Remove(path)
		}
		return nil, false
	}
	return ix, true
}

// saveSpill persists a freshly built index to the spill directory,
// best-effort: a failed save costs a rebuild later, nothing else.
func (c *indexCache) saveSpill(key string, ix *core.Index) {
	c.mu.Lock()
	dir, log := c.dir, c.log
	c.mu.Unlock()
	if dir == "" || ix == nil {
		return
	}
	// CacheKey is hex SHA-256, so the key is filename-safe by construction.
	if err := ix.SaveFile(filepath.Join(dir, key+".bwx")); err != nil && log != nil {
		log.Warn("could not spill index to disk", "key", key, "err", err)
	}
}

// isContextError reports whether err is cancellation or timeout — the errors
// a canceled builder poisons its entry with.
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// evictOverflowLocked drops least-recently-used entries past capacity.
// Evicted entries that are still building complete for their waiters (the
// entry carries its own data); they just stop being findable.
func (c *indexCache) evictOverflowLocked() {
	for len(c.entries) > c.capacity {
		el := c.order.Back()
		e := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.evictions++
	}
}

// cacheStats is a point-in-time snapshot for /api/stats.
type cacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	DiskHits  uint64 `json:"disk_hits"`
	SizeBytes int    `json:"size_bytes"`
}

// ftabStats is the prefix-lookup-table block of /api/stats: the configured
// table order plus figures aggregated over every ready cached index — bytes
// resident and lookup outcomes (hit: the table answered, including stored
// dead ranges; miss: the query suffix held an out-of-alphabet symbol; short:
// the read was shorter than k).
type ftabStats struct {
	K         int    `json:"k"`
	SizeBytes int    `json:"size_bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Short     uint64 `json:"short"`
}

func (c *indexCache) ftabStats(configuredK int) ftabStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := ftabStats{K: configuredK}
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			if e.ix == nil {
				continue
			}
			s.SizeBytes += e.ix.FtabBytes()
			fs := e.ix.FtabStats()
			s.Hits += fs.Hits
			s.Misses += fs.Misses
			s.Short += fs.Short
		default: // still building
		}
	}
	return s
}

func (c *indexCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := cacheStats{
		Entries:   len(c.entries),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		DiskHits:  c.diskHits,
	}
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			s.SizeBytes += e.sizeBytes
		default: // still building; size unknown
		}
	}
	return s
}
