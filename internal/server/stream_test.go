package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    int
	event string
	data  string
}

// getSSE reads a job's stream to completion and parses the events. from > 0
// resumes with a Last-Event-ID header, the way a reconnecting EventSource
// does.
func getSSE(t *testing.T, ts *httptest.Server, id, from int) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/api/jobs/%d/stream", ts.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(from))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(line[4:])
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cur.event != "" {
		events = append(events, cur)
	}
	return events
}

// The SSE stream replays a finished job in full: one result event per read
// with 1-based contiguous ids, sealed by a done event whose summary matches
// the job, and Last-Event-ID resumes exactly after the acknowledged row.
func TestStreamSSEReplayAndResume(t *testing.T) {
	refFasta, readsFastq, sim := testData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	waitForState(t, ts, 1, StateDone)

	events := getSSE(t, ts, 1, 0)
	if len(events) != len(sim)+1 {
		t.Fatalf("%d events, want %d results + terminal", len(events), len(sim))
	}
	for i, ev := range events[:len(sim)] {
		if ev.event != "result" || ev.id != i+1 {
			t.Fatalf("event %d = {id %d, %q}, want result id %d", i, ev.id, ev.event, i+1)
		}
		var row exactRow
		if err := json.Unmarshal([]byte(ev.data), &row); err != nil {
			t.Fatalf("event %d data not an exactRow: %v", i, err)
		}
	}
	term := events[len(sim)]
	if term.event != string(StateDone) || term.id != len(sim)+1 {
		t.Fatalf("terminal event = {id %d, %q}", term.id, term.event)
	}
	var summary struct {
		State  string `json:"state"`
		Reads  int    `json:"reads"`
		Mapped int    `json:"mapped"`
	}
	if err := json.Unmarshal([]byte(term.data), &summary); err != nil {
		t.Fatal(err)
	}
	j := getJobJSON(t, ts, 1)
	if summary.State != "done" || summary.Reads != j.Reads || summary.Mapped != j.Mapped {
		t.Errorf("terminal summary %+v does not match job %+v", summary, j)
	}

	// Resume after row N: only rows N+1.. plus the terminal event, and the
	// rows are bit-identical to the full replay.
	from := len(sim) / 2
	resumed := getSSE(t, ts, 1, from)
	if len(resumed) != len(sim)-from+1 {
		t.Fatalf("resume from %d gave %d events, want %d", from, len(resumed), len(sim)-from+1)
	}
	for i, ev := range resumed[:len(resumed)-1] {
		want := events[from+i]
		if ev.id != want.id || ev.data != want.data {
			t.Errorf("resumed event %d differs: %+v vs %+v", i, ev, want)
		}
	}
	// Resuming past the end: just the terminal event.
	if tail := getSSE(t, ts, 1, len(sim)+5); len(tail) != 1 || tail[0].event != string(StateDone) {
		t.Errorf("past-the-end resume: %+v", tail)
	}
}

// A subscriber further behind than one read window is the common case on any
// finished job bigger than streamReadChunk: the window clips mid-line and the
// torn tail must be re-read, not treated as corruption. Regression test — the
// handler used to kill the connection on the first clipped window, so results
// beyond the window size could never be streamed, and a window narrower than
// one row must grow instead of spinning.
func TestStreamBacklogLargerThanReadWindow(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	waitForState(t, ts, 1, StateDone)
	golden := getSSE(t, ts, 1, 0)

	old := streamReadChunk
	defer func() { streamReadChunk = old }()
	// 200 bytes: a few rows per window, clipping mid-line on most reads.
	// 16 bytes: narrower than any row, forcing the window-growth path.
	for _, window := range []int{200, 16} {
		streamReadChunk = window
		events := getSSE(t, ts, 1, 0)
		if len(events) != len(golden) {
			t.Fatalf("window %d: %d events, want %d", window, len(events), len(golden))
		}
		for i, ev := range events {
			if ev.id != golden[i].id || ev.data != golden[i].data {
				t.Fatalf("window %d: event %d differs: %+v vs %+v", window, i, ev, golden[i])
			}
		}
	}
}

// Accept: application/x-ndjson drops the SSE framing: raw NDJSON rows, one
// per read, terminated by an {"event": ...} summary line, and the rows carry
// the same mapping verdicts as the TSV.
func TestStreamNDJSON(t *testing.T) {
	refFasta, readsFastq, sim := testData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	waitForState(t, ts, 1, StateDone)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/jobs/1/stream?from=0", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != len(sim)+1 {
		t.Fatalf("%d NDJSON lines, want %d + summary", len(lines), len(sim))
	}
	wantMapped := map[string]bool{}
	for _, r := range sim {
		wantMapped[r.ID] = r.Origin >= 0
	}
	for _, line := range lines[:len(sim)] {
		var row exactRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", line, err)
		}
		if row.Mapped != wantMapped[row.Read] {
			t.Errorf("read %s mapped=%t, want %t", row.Read, row.Mapped, wantMapped[row.Read])
		}
	}
	var terminal struct {
		Event string `json:"event"`
	}
	if err := json.Unmarshal([]byte(lines[len(sim)]), &terminal); err != nil || terminal.Event != "done" {
		t.Errorf("NDJSON terminal line %q", lines[len(sim)])
	}
}

// A subscriber attached while the job is still mapping receives the results
// live and the terminal event when it finishes — and a concurrent Drain must
// not hang on the subscriber. Run under -race.
func TestDrainWithInFlightStream(t *testing.T) {
	refFasta, readsFastq, sim := testData(t)
	s := New()
	release := make(chan struct{})
	var once sync.Once
	entered := make(chan struct{}, 1)
	s.testHookBeforeRun = func(j *Job, ctx context.Context) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer once.Do(func() { close(release) })

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	<-entered // the job is running but held before it maps anything

	type streamResult struct {
		events []sseEvent
		err    error
	}
	got := make(chan streamResult, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/jobs/1/stream", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			got <- streamResult{err: err}
			return
		}
		defer resp.Body.Close()
		var events []sseEvent
		var cur sseEvent
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if cur.event != "" {
					events = append(events, cur)
				}
				cur = sseEvent{}
			case strings.HasPrefix(line, "event: "):
				cur.event = line[7:]
			}
		}
		got <- streamResult{events: events, err: sc.Err()}
	}()

	// Drain while the subscriber is parked on an empty stream, then let the
	// job run. Drain must return once the job is terminal — the subscriber
	// holds no WaitGroup reference — and the subscriber must still get every
	// event.
	s.BeginDrain()
	once.Do(func() { close(release) })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with an attached subscriber: %v", err)
	}
	res := <-got
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.events) != len(sim)+1 {
		t.Fatalf("subscriber saw %d events, want %d + terminal", len(res.events), len(sim))
	}
	if last := res.events[len(res.events)-1]; last.event != string(StateDone) {
		t.Errorf("terminal event %q, want done", last.event)
	}
}

// The O(batch) claim: with a small stream batch, the peak result bytes a job
// stages in memory stay far below the full TSV it produced.
func TestPeakResultBufferIsBatchBounded(t *testing.T) {
	refFasta, readsFastq, sim := testData(t)
	s := NewWithConfig(Config{StreamBatch: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	waitForState(t, ts, 1, StateDone)

	j := getJobJSON(t, ts, 1)
	tsv := fetchResults(t, ts, 1)
	if j.PeakResultBuf <= 0 {
		t.Fatal("peak_result_buffer_bytes not recorded")
	}
	if j.PeakResultBuf >= len(tsv) {
		t.Errorf("peak staged bytes %d >= full TSV %d: batching is not bounding memory (%d reads)",
			j.PeakResultBuf, len(tsv), len(sim))
	}
}

// Durable chunked uploads survive a crash: the journal restores the job in
// state uploading with the offsets the disk holds, the client resumes from
// them, and the finished job matches the undisturbed buffered run. The
// Idempotency-Key is restored too, so a blind resubmission replays instead of
// double-running.
func TestUploadReplayAfterCrash(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	stateDir := t.TempDir()
	s, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	waitForState(t, ts, 1, StateDone)
	golden := fetchResults(t, ts, 1)

	// Open a chunked job and feed only part of the reference.
	code, created, _ := doJSON(t, http.MethodPost, ts.URL+"/api/jobs",
		[]byte(`{"backend":"cpu"}`),
		map[string]string{"Content-Type": "application/json", "Idempotency-Key": "crashy"})
	if code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	id := int(created["id"].(float64))
	cut := len(refFasta) / 2
	if code, _ := putChunk(t, ts, id, "reference", 0, refFasta[:cut]); code != http.StatusOK {
		t.Fatalf("partial chunk returned %d", code)
	}

	// "Crash" mid-upload and restart on the snapshot.
	crashed := snapshotDir(t, stateDir)
	ts.Close()
	s.Close()
	s2, err := Open(Config{StateDir: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// The job came back uploading, with the committed offset to resume from.
	j := getJobJSON(t, ts2, id)
	if j.State != string(StateUploading) || j.ReferenceOffset == nil || *j.ReferenceOffset != int64(cut) {
		t.Fatalf("replayed upload job %+v, want uploading at offset %d", j, cut)
	}
	// The idempotency key survived: resubmitting the create replays the job.
	code, replay, hdr := doJSON(t, http.MethodPost, ts2.URL+"/api/jobs",
		[]byte(`{"backend":"cpu"}`),
		map[string]string{"Content-Type": "application/json", "Idempotency-Key": "crashy"})
	if code != http.StatusOK || int(replay["id"].(float64)) != id || hdr.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("post-crash resubmit: %d %v", code, replay)
	}

	// Resume from the journaled offset and finish the job.
	if code, _ := putChunk(t, ts2, id, "reference", int64(cut), refFasta[cut:]); code != http.StatusOK {
		t.Fatalf("resumed chunk returned %d", code)
	}
	if code, _ := putChunk(t, ts2, id, "reads", 0, readsFastq); code != http.StatusOK {
		t.Fatalf("reads chunk returned %d", code)
	}
	code, payload, _ := doJSON(t, http.MethodPost, fmt.Sprintf("%s/api/jobs/%d/finalize", ts2.URL, id), nil, nil)
	if code != http.StatusAccepted {
		t.Fatalf("finalize returned %d: %v", code, payload)
	}
	waitForState(t, ts2, id, StateDone)
	if got := fetchResults(t, ts2, id); !bytes.Equal(got, golden) {
		t.Error("resumed chunked job results differ from the buffered run")
	}

	// The stream of the recovered, finished job replays in full too: the
	// spill survived (or the terminal job re-ran deterministically), so a
	// client that lost its connection in the crash resumes bit-identically.
	events := getSSE(t, ts2, id, 0)
	if len(events) < 2 || events[len(events)-1].event != string(StateDone) {
		t.Fatalf("recovered stream replay: %d events", len(events))
	}
}

// A done job's stream survives a restart: the NDJSON spill is restored and
// served closed, with Last-Event-ID resume still lining up.
func TestStreamReplayAfterRestart(t *testing.T) {
	refFasta, readsFastq, sim := testData(t)
	stateDir := t.TempDir()
	s, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	waitForState(t, ts, 1, StateDone)
	full := getSSE(t, ts, 1, 0)
	ts.Close()
	s.Close()

	s2, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	from := len(sim) - 3
	resumed := getSSE(t, ts2, 1, from)
	if len(resumed) != 4 {
		t.Fatalf("restart resume gave %d events, want 4", len(resumed))
	}
	for i, ev := range resumed[:3] {
		want := full[from+i]
		if ev.id != want.id || ev.data != want.data {
			t.Errorf("restored event %d differs: %+v vs %+v", i, ev, want)
		}
	}
	if resumed[3].event != string(StateDone) {
		t.Errorf("restored terminal event %q", resumed[3].event)
	}
}

// A failed job's stream closes with a failed event carrying the error, so
// subscribers are never left hanging on a job that will produce no rows.
func TestStreamTerminalOnFailure(t *testing.T) {
	_, readsFastq, _ := testData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": []byte("garbage"), "reads": readsFastq})
	waitForState(t, ts, 1, StateFailed)

	events := getSSE(t, ts, 1, 0)
	if len(events) != 1 || events[0].event != string(StateFailed) {
		t.Fatalf("failed job stream: %+v", events)
	}
	var summary struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(events[0].data), &summary); err != nil || summary.Error == "" {
		t.Errorf("failed terminal event carries no error: %q", events[0].data)
	}
}
