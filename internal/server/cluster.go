package server

import (
	"bytes"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/obs"
	"bwaver/internal/rrr"
)

// Worker-mode hooks: the pieces internal/cluster needs from the server to
// run it as a cluster node — the shared ring-key derivation, the deadline
// budget header, and the queue-pressure readings the gateway's heartbeats
// consume.

// Default RRR parameters for submissions that do not specify b/sf; shared
// with the gateway so its ring-key extraction defaults match the workers'
// admission defaults.
const (
	DefaultB  = 15
	DefaultSF = 50
)

// TimeoutBudgetHeader is the request header carrying a job's remaining
// deadline budget in whole milliseconds. A gateway stamps it on forwarded
// submissions with deadline-minus-elapsed, so a retried or failed-over job
// never restarts its clock: the worker caps its own -job-timeout to this
// budget (see effectiveTimeout).
const TimeoutBudgetHeader = "X-Bwaver-Timeout-Ms"

// RingKey derives the content address of the index a submission will need:
// the same core.CacheKey the index cache is keyed by. The cluster gateway
// hashes this onto its worker ring, so jobs land on the worker whose cache
// already holds the built index.
func RingKey(refRaw []byte, b, sf, ftabK int) (string, error) {
	ref, contigs, _, err := parseReference(bytes.NewReader(refRaw))
	if err != nil {
		return "", err
	}
	return core.CacheKey(ref, contigs, core.IndexConfig{
		RRR:   rrr.Params{BlockSize: b, SuperblockFactor: sf},
		FtabK: ftabK,
	}), nil
}

// effectiveTimeout resolves a submission's job timeout: the server's own
// -job-timeout, shrunk to the gateway-propagated remaining budget when that
// is tighter (or adopted outright when the server has no timeout of its
// own). Zero means unbounded.
func (s *Server) effectiveTimeout(r *http.Request) time.Duration {
	t := s.cfg.JobTimeout
	v := strings.TrimSpace(r.Header.Get(TimeoutBudgetHeader))
	if v == "" {
		return t
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return t
	}
	budget := time.Duration(ms) * time.Millisecond
	if t == 0 || budget < t {
		return budget
	}
	return t
}

// withRequestID stamps every request with an X-Request-Id — the client's (a
// gateway forwards one per job) or a freshly minted one — echoes it on the
// response, and puts it on the context for the access log and job records.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := strings.TrimSpace(r.Header.Get(obs.RequestIDHeader))
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, reqID)
		next.ServeHTTP(w, r.WithContext(obs.WithRequestID(r.Context(), reqID)))
	})
}

// jobTimeout resolves a job's runtime bound: its admission-time budget when
// it has one, else the server-wide -job-timeout (journal replays carry no
// budget — a persisted remainder would be stale by the restart).
func (s *Server) jobTimeout(job *Job) time.Duration {
	if job.timeout > 0 {
		return job.timeout
	}
	return s.cfg.JobTimeout
}

// QueueDepth reports how many jobs hold admission queue slots (queued +
// uploading) — the figure the gateway's heartbeat reads for load-aware
// decisions.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedCount
}

// JobsInFlight reports how many jobs are currently running a pipeline.
func (s *Server) JobsInFlight() int {
	return s.countJobs(StateRunning)
}
