package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fastx"
	"bwaver/internal/readsim"
)

// bigTestData builds an upload pair over a reference large enough that index
// construction dominates a cache lookup by well over an order of magnitude.
func bigTestData(t *testing.T, seed int64) (refFasta, readsFastq []byte) {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 200_000, Seed: seed, RepeatFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 40, Length: 50, MappingRatio: 0.6, RevCompFraction: 0.5, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	fw := fastx.NewWriter(&fb, fastx.FASTA, false)
	if err := fw.Write(&fastx.Record{ID: "bigref", Seq: []byte(ref.String())}); err != nil {
		t.Fatal(err)
	}
	fw.Close()
	var qb bytes.Buffer
	qw := fastx.NewWriter(&qb, fastx.FASTQ, false)
	for _, r := range sim {
		if err := qw.Write(&fastx.Record{ID: r.ID, Seq: []byte(r.Seq.String())}); err != nil {
			t.Fatal(err)
		}
	}
	qw.Close()
	return fb.Bytes(), qb.Bytes()
}

func getJobJSON(t *testing.T, ts *httptest.Server, id int) jobJSON {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/api/jobs/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job %d returned %d", id, resp.StatusCode)
	}
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func getStats(t *testing.T, ts *httptest.Server) statsJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats returned %d", resp.StatusCode)
	}
	var st statsJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The tentpole acceptance: a repeated reference skips index construction —
// the second submission reports a cache hit and a build time at least 10x
// below the first.
func TestCacheHitSpeedsRepeatSubmission(t *testing.T) {
	refFasta, readsFastq := bigTestData(t, 70)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	first, second := getJobJSON(t, ts, 1), getJobJSON(t, ts, 2)
	if first.State != "done" || second.State != "done" {
		t.Fatalf("states %s/%s, want done/done", first.State, second.State)
	}
	if first.CacheHit {
		t.Error("first submission reported a cache hit")
	}
	if !second.CacheHit {
		t.Error("second submission did not report a cache hit")
	}
	if second.BuildMs*10 > first.BuildMs {
		t.Errorf("cache hit build %.3fms not 10x below miss build %.3fms", second.BuildMs, first.BuildMs)
	}

	st := getStats(t, ts)
	if st.Cache.Misses != 1 || st.Cache.Hits != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}

	// Different RRR parameters address a different index: no false hit.
	submitJob(t, s, ts, map[string]string{"backend": "cpu", "b": "7"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	if third := getJobJSON(t, ts, 3); third.CacheHit {
		t.Error("different RRR parameters reported a cache hit")
	}
}

// Concurrent jobs for one reference must build once (single-flight): every
// job beyond the builder counts as a hit even while the build is in flight.
func TestCacheSingleFlight(t *testing.T) {
	refFasta, readsFastq := bigTestData(t, 71)
	s := NewWithConfig(Config{MaxConcurrentJobs: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const jobs = 4
	for i := 0; i < jobs; i++ {
		submitJob(t, s, ts, map[string]string{"backend": "cpu"},
			map[string][]byte{"reference": refFasta, "reads": readsFastq})
	}
	s.Wait()
	st := getStats(t, ts)
	if st.Cache.Misses != 1 {
		t.Errorf("%d misses for %d identical concurrent jobs, want 1 (single-flight)", st.Cache.Misses, jobs)
	}
	if st.Cache.Hits != jobs-1 {
		t.Errorf("%d hits, want %d", st.Cache.Hits, jobs-1)
	}
	for id := 1; id <= jobs; id++ {
		if j := getJobJSON(t, ts, id); j.State != "done" {
			t.Errorf("job %d state %s, want done", id, j.State)
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := New()
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.testHookBeforeRun = func(j *Job, ctx context.Context) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	<-entered // the job is running, held by the hook

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/jobs/1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel returned %d, want 202", resp.StatusCode)
	}
	s.Wait()
	if j := getJobJSON(t, ts, 1); j.State != string(StateCanceled) {
		t.Errorf("job state %s, want canceled", j.State)
	}

	// Cancelling a terminal job conflicts.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/jobs/1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel of terminal job returned %d, want 409", resp.StatusCode)
	}

	// Cancelling a missing job 404s.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/jobs/99", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel of missing job returned %d, want 404", resp.StatusCode)
	}
}

// A job still waiting for a pipeline slot cancels without ever running.
func TestCancelQueuedJob(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := NewWithConfig(Config{MaxConcurrentJobs: 1})
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.testHookBeforeRun = func(j *Job, ctx context.Context) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	<-entered // job 1 holds the only slot
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/jobs/2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel returned %d, want 202", resp.StatusCode)
	}

	// The queued job must reach the canceled state without waiting for the
	// running job to release its slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j := getJobJSON(t, ts, 2); j.State == string(StateCanceled) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued job not canceled after 5s: state %s", getJobJSON(t, ts, 2).State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	s.Wait()
	if j := getJobJSON(t, ts, 1); j.State != "done" {
		t.Errorf("job 1 state %s, want done", j.State)
	}
}

func TestJobTimeout(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := NewWithConfig(Config{JobTimeout: 30 * time.Millisecond})
	s.testHookBeforeRun = func(j *Job, ctx context.Context) { <-ctx.Done() }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	j := getJobJSON(t, ts, 1)
	if j.State != string(StateFailed) {
		t.Fatalf("timed-out job state %s, want failed", j.State)
	}
	if !strings.Contains(j.Error, "timeout") {
		t.Errorf("timeout error not visible: %q", j.Error)
	}
}

// Upload parsing happens on the job goroutine: a malformed reference is
// accepted at submit time and fails inside the job, where the error is
// visible.
func TestSubmitParseFailureFailsJob(t *testing.T) {
	_, readsFastq := testDataSmall(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	loc := submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": []byte("not fasta at all"), "reads": readsFastq})
	if loc != "/jobs/1" {
		t.Fatalf("submit redirected to %q", loc)
	}
	s.Wait()
	j := getJobJSON(t, ts, 1)
	if j.State != string(StateFailed) {
		t.Fatalf("job state %s, want failed", j.State)
	}
	if !strings.Contains(j.Error, "reference") {
		t.Errorf("parse error not visible: %q", j.Error)
	}
}

// The FPGA backend must report progress like the CPU backend does.
func TestFPGAJobReportsProgress(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitJob(t, s, ts, map[string]string{"backend": "fpga"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	j := getJobJSON(t, ts, 1)
	if j.State != "done" {
		t.Fatalf("job state %s, want done", j.State)
	}
	if j.Done != j.Reads || j.Done == 0 {
		t.Errorf("fpga job reported %d/%d done", j.Done, j.Reads)
	}
}

func TestStatsEndpoint(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	st := getStats(t, ts)
	if st.Jobs["done"] != 1 {
		t.Errorf("stats jobs %v, want 1 done", st.Jobs)
	}
	if st.QueueDepth != 0 || st.Running != 0 {
		t.Errorf("queue depth %d running %d, want 0/0", st.QueueDepth, st.Running)
	}
	if st.Cache.Misses != 1 || st.Cache.Entries != 1 || st.Cache.SizeBytes <= 0 {
		t.Errorf("cache stats %+v, want one built entry", st.Cache)
	}
	if st.Stage.CompletedJobs != 1 || st.Stage.BuildMsTotal <= 0 || st.Stage.MapMsTotal < 0 {
		t.Errorf("stage totals %+v", st.Stage)
	}
}

func TestJobTTLEviction(t *testing.T) {
	s := NewWithConfig(Config{JobTTL: time.Minute})
	defer s.Close()
	job := s.createJob("cpu", 15, 50, 0, "x", 100, 10)
	s.mu.Lock()
	job.State = StateDone
	job.Finished = time.Now().Add(-time.Hour)
	s.mu.Unlock()
	fresh := s.createJob("cpu", 15, 50, 0, "y", 100, 10)

	if n := s.evictExpiredJobs(time.Now()); n != 1 {
		t.Fatalf("evicted %d jobs, want 1", n)
	}
	s.mu.Lock()
	_, expiredGone := s.jobs[job.ID]
	_, freshKept := s.jobs[fresh.ID]
	s.mu.Unlock()
	if expiredGone {
		t.Error("expired job still listed")
	}
	if !freshKept {
		t.Error("non-terminal job evicted")
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if st := getStats(t, ts); st.Evicted != 1 {
		t.Errorf("stats report %d evicted jobs, want 1", st.Evicted)
	}
}

// Read IDs are user input: tabs and newlines must not corrupt the TSV.
func TestTSVEscapesReadIDs(t *testing.T) {
	if got := sanitizeID("a\tb\nc\rd"); got != "a b c d" {
		t.Fatalf("sanitizeID = %q", got)
	}

	ids := []string{"evil\tid\nsecond-line"}
	reads := []dna.Seq{dna.MustParseSeq("ACGT")}
	var buf bytes.Buffer
	writeResultsTSV(&buf, nil, ids, reads, []core.MapResult{{}})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("TSV has %d lines, want header + 1 row:\n%s", len(lines), buf.String())
	}
	if fields := strings.Split(lines[1], "\t"); len(fields) != 6 {
		t.Fatalf("row has %d fields, want 6: %q", len(fields), lines[1])
	}

	// The approx writer shares the helper: same guarantee end to end.
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 3000, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	entry := &cacheEntry{ix: ix, ready: make(chan struct{})}
	close(entry.ready)
	s := New()
	job := s.createJob("cpu", 15, 50, 1, "x", len(ref), 1)
	em, err := s.newEmitter(job)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.runApprox(context.Background(), job, entry, reads, ids, em); err != nil {
		t.Fatal(err)
	}
	if err := em.finish(); err != nil {
		t.Fatal(err)
	}
	atsv := string(job.results)
	alines := strings.Split(strings.TrimRight(atsv, "\n"), "\n")
	if len(alines) != 2 {
		t.Fatalf("approx TSV has %d lines, want 2:\n%s", len(alines), atsv)
	}
	if fields := strings.Split(alines[1], "\t"); len(fields) != 4 {
		t.Fatalf("approx row has %d fields, want 4: %q", len(fields), alines[1])
	}
}

// The demo is reproducible: one fixed seed drives genome and reads, and an
// explicit ?seed=N picks a different dataset.
func TestDemoReproducible(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	runDemo := func(url string) (int, []byte) {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusSeeOther {
			t.Fatalf("demo returned %d", resp.StatusCode)
		}
		loc := resp.Header.Get("Location")
		s.Wait()
		res, err := http.Get(ts.URL + loc + "/results")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		tsv, _ := io.ReadAll(res.Body)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("demo results returned %d: %s", res.StatusCode, tsv)
		}
		var id int
		fmt.Sscanf(loc, "/jobs/%d", &id)
		return id, tsv
	}

	id1, tsv1 := runDemo(ts.URL + "/demo")
	id2, tsv2 := runDemo(ts.URL + "/demo")
	if !bytes.Equal(tsv1, tsv2) {
		t.Error("two default demo runs produced different results")
	}
	_, tsv3 := runDemo(ts.URL + "/demo?seed=7")
	if bytes.Equal(tsv1, tsv3) {
		t.Error("seed override did not change the demo dataset")
	}

	j1, j2 := getJobJSON(t, ts, id1), getJobJSON(t, ts, id2)
	if j1.Mismatches != 0 || j2.Mismatches != 0 {
		t.Errorf("demo mismatch budgets %d/%d, want 0", j1.Mismatches, j2.Mismatches)
	}
	// The repeated demo reference must come from the cache.
	if j1.CacheHit || !j2.CacheHit {
		t.Errorf("demo cache hits %t/%t, want false/true", j1.CacheHit, j2.CacheHit)
	}

	// A malformed seed is rejected.
	resp, err := client.Get(ts.URL + "/demo?seed=abc")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad seed returned %d, want 400", resp.StatusCode)
	}
}

// testDataSmall reuses the seed-data helper from server_test.go but returns
// only the upload bytes.
func testDataSmall(t *testing.T) (refFasta, readsFastq []byte) {
	t.Helper()
	refFasta, readsFastq, _ = testData(t)
	return refFasta, readsFastq
}
