package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"bwaver/internal/fmindex"
	"bwaver/internal/obs"
	"bwaver/internal/qc"
	"bwaver/internal/rrr"
)

// Chunked, resumable job ingest. The multipart POST /jobs path buffers the
// whole upload before a job exists, which caps job size by RAM and gives a
// flaky client nothing to resume. The streaming protocol splits submission
// into three steps:
//
//	POST /api/jobs                      -> job shell in state "uploading"
//	PUT  /api/jobs/{id}/reference?offset=N   (repeat per chunk, both parts)
//	PUT  /api/jobs/{id}/reads?offset=N
//	POST /api/jobs/{id}/finalize        -> payload sealed, job queued
//
// Chunks append at the committed offset; a client that lost an ACK re-sends
// and the duplicate is recognized (offset+len inside the committed extent is
// a no-op ACK), a client that crashed asks GET /api/jobs/{id} for the
// committed offsets and resumes. In durable mode chunks land directly in the
// journal's payloads/ layout, so the PR-5 replay semantics extend to partial
// uploads: a restarted server restores the job in state uploading with the
// offsets the disk actually holds. An uploading job occupies an admission
// queue slot (backpressure composes with -max-queue), oversized uploads are
// shed with the structured admission envelope, and -upload-timeout fails
// uploads whose client went away so the slot frees.
//
// Idempotent retries: an Idempotency-Key header on any submission path is
// remembered with the job (journaled in its accepted/uploading record), so a
// retry after a 429/503, a drain, or a crash returns the original job —
// offsets and all — instead of double-running it.

// uploadState tracks a chunked job's payload progress. Sizes are the
// committed extent of each part; the stateless server holds the bytes in
// memory, the durable one appends straight to the journal's payload files.
type uploadState struct {
	mu           sync.Mutex
	refBuf       []byte // stateless accumulation
	readsBuf     []byte
	refSize      int64
	readsSize    int64
	lastActivity time.Time
	// sealed flips when finalize (or a terminal failure) takes the payload
	// out of the upload path; chunk appends re-check it under mu so a
	// straggler cannot write after the extent was fsync'd and launched.
	sealed bool
}

// seal marks the payload closed to further chunk appends.
func (up *uploadState) seal() {
	up.mu.Lock()
	up.sealed = true
	up.mu.Unlock()
}

// Upload rejection reasons, shaped like the admission envelope.
const (
	reasonTooLarge     = "too_large"
	reasonBadOffset    = "bad_offset"
	reasonUploadStale  = "upload_stalled"
	reasonWrongState   = "wrong_state"
	reasonEmptyPayload = "empty_payload"
)

// validateJobParams normalizes and validates the submission parameters shared
// by the multipart and chunked paths.
func validateJobParams(backend, mode string, b, sf, mismatches int) (string, string, error) {
	if backend == "" {
		backend = "fpga"
	}
	if backend != "cpu" && backend != "fpga" {
		return "", "", fmt.Errorf("backend must be cpu or fpga")
	}
	switch mode {
	case "", ModeMem, ModeMemPE:
	default:
		return "", "", fmt.Errorf("mode must be %s or %s", ModeMem, ModeMemPE)
	}
	if mode != "" && mismatches != 0 {
		return "", "", fmt.Errorf("mode=%s scores alignments; the mismatch budget applies only to the default mode", mode)
	}
	if mismatches < 0 || mismatches > fmindex.MaxMismatchBudget {
		return "", "", fmt.Errorf("mismatch budget must be in [0,%d]", fmindex.MaxMismatchBudget)
	}
	if err := (rrr.Params{BlockSize: b, SuperblockFactor: sf}).Validate(); err != nil {
		return "", "", err
	}
	return backend, mode, nil
}

// idemLookup returns the job a previously seen Idempotency-Key maps to.
func (s *Server) idemLookup(key string) *Job {
	if key == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.idemKeys[key]; ok {
		return s.jobs[id]
	}
	return nil
}

// respondIdempotentReplay answers a retried submission with the original job.
func (s *Server) respondIdempotentReplay(w http.ResponseWriter, job *Job) {
	s.mu.Lock()
	payload := job.toJSON()
	s.mu.Unlock()
	w.Header().Set("Idempotency-Replayed", "true")
	writeJSON(w, http.StatusOK, payload)
}

// handleCreateJob opens a streaming job: parameters now, payload later via
// chunk PUTs. Accepts a JSON body {"backend","b","sf","mismatches"} or form
// values; an Idempotency-Key header makes the create retryable.
func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	idemKey := strings.TrimSpace(r.Header.Get("Idempotency-Key"))
	if job := s.idemLookup(idemKey); job != nil {
		s.respondIdempotentReplay(w, job)
		return
	}
	if ae := s.preAdmit(r); ae != nil {
		s.rejectAdmission(w, ae)
		return
	}
	b, sf, mismatches := DefaultB, DefaultSF, 0
	backend, mode := "", ""
	var qcReq qcParams
	fromJSON := strings.HasPrefix(r.Header.Get("Content-Type"), "application/json")
	if fromJSON {
		var req struct {
			Backend    string   `json:"backend"`
			Mode       string   `json:"mode"`
			B          *int     `json:"b"`
			SF         *int     `json:"sf"`
			Mismatches *int     `json:"mismatches"`
			QC         qcParams `json:"qc"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil && err != io.EOF {
			jsonError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		backend = req.Backend
		mode = req.Mode
		if req.B != nil {
			b = *req.B
		}
		if req.SF != nil {
			sf = *req.SF
		}
		if req.Mismatches != nil {
			mismatches = *req.Mismatches
		}
		qcReq = req.QC
	} else {
		var err error
		backend = r.FormValue("backend")
		mode = r.FormValue("mode")
		if b, err = formInt(r, "b", DefaultB); err != nil {
			jsonError(w, http.StatusBadRequest, err.Error())
			return
		}
		if sf, err = formInt(r, "sf", DefaultSF); err != nil {
			jsonError(w, http.StatusBadRequest, err.Error())
			return
		}
		if mismatches, err = formInt(r, "mismatches", 0); err != nil {
			jsonError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	backend, mode, err := validateJobParams(backend, mode, b, sf, mismatches)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	var qcPol qc.Policy
	if fromJSON {
		qcPol, err = qcReq.policy(mode)
	} else {
		qcPol, err = qcPolicyFromForm(r.FormValue, mode)
	}
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}

	job, existing, ae := s.admitJob(jobSpec{
		Backend: backend, Mode: mode, B: b, SF: sf, Mismatches: mismatches,
		QC:      qcPol,
		RefName: "(uploading)", IdemKey: idemKey,
		RequestID: obs.RequestIDFrom(r.Context()),
		Timeout:   s.effectiveTimeout(r),
	}, StateUploading)
	if ae != nil {
		s.rejectAdmission(w, ae)
		return
	}
	if existing {
		s.respondIdempotentReplay(w, job)
		return
	}
	if s.journal != nil {
		refRel, readsRel := payloadNames(job.ID)
		rec := journalRecord{
			Type:         recUploading,
			Job:          job.ID,
			Backend:      job.Backend,
			Mode:         job.Mode,
			B:            job.B,
			SF:           job.SF,
			Mismatches:   job.Mismatches,
			RefPayload:   refRel,
			ReadsPayload: readsRel,
			IdemKey:      job.IdemKey,
			RequestID:    job.RequestID,
			Created:      job.Created,
		}
		if job.QC.Active() {
			pol := job.QC
			rec.QC = &pol
		}
		if err := s.journal.append(rec); err != nil {
			s.failUploadingJob(job, "journal: "+err.Error())
			jsonError(w, http.StatusInternalServerError, "could not persist job")
			return
		}
	}
	s.log.Info("streaming job opened", "job", job.ID, "backend", job.Backend)
	writeJSON(w, http.StatusCreated, s.uploadStatus(job))
}

// uploadStatus is the client's resume anchor: the committed offset per part.
func (s *Server) uploadStatus(job *Job) map[string]any {
	job.upload.mu.Lock()
	refN, readsN := job.upload.refSize, job.upload.readsSize
	job.upload.mu.Unlock()
	s.mu.Lock()
	state := job.State
	s.mu.Unlock()
	return map[string]any{
		"id":               job.ID,
		"state":            string(state),
		"reference_offset": refN,
		"reads_offset":     readsN,
	}
}

// failUploadingJob aborts a chunked job before launch: terminal failed state,
// queue slot freed, partial payloads removed, stream closed.
func (s *Server) failUploadingJob(job *Job, msg string) {
	s.mu.Lock()
	if job.State.terminal() {
		s.mu.Unlock()
		return
	}
	s.setJobStateLocked(job, StateFailed)
	job.Error = msg
	job.Finished = time.Now()
	up := job.upload
	s.mu.Unlock()
	if up != nil {
		up.seal()
	}
	if s.journal != nil {
		s.journal.appendBestEffort(journalRecord{Type: recFailed, Job: job.ID, Error: msg, Finished: job.Finished})
		refRel, readsRel := payloadNames(job.ID)
		s.journal.removeFiles(refRel, readsRel)
	}
	s.closeJobStream(job)
}

// handleUploadChunk appends one chunk to a part ("reference" or "reads") at
// the committed offset. Responses always carry the committed offset, so a
// client can resynchronize from any reply.
func (s *Server) handleUploadChunk(part string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		job, err := s.jobByRequest(r)
		if err != nil {
			jsonError(w, http.StatusNotFound, err.Error())
			return
		}
		if s.Draining() {
			// Mid-upload drain: the chunk is refused but the job keeps its
			// journaled partial payload; the client resumes against the
			// replacement instance after replay.
			writeAdmissionError(w, &admissionError{
				status: http.StatusServiceUnavailable, reason: reasonDraining,
				msg: "server is draining; resume the upload after restart", retryAfter: drainRetryAfter,
			})
			return
		}
		s.mu.Lock()
		state := job.State
		up := job.upload
		s.mu.Unlock()
		if state != StateUploading || up == nil {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  fmt.Sprintf("job %d is %s; not accepting chunks", job.ID, state),
				"reason": reasonWrongState,
				"state":  string(state),
			})
			return
		}

		up.mu.Lock()
		defer up.mu.Unlock()
		if up.sealed {
			// Finalize (or a terminal failure) won the race between our state
			// check and taking up.mu; the payload may already be fsync'd and
			// parsing, so a straggler append must be refused.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  fmt.Sprintf("job %d payload is sealed; not accepting chunks", job.ID),
				"reason": reasonWrongState,
			})
			return
		}
		committed := up.refSize
		if part == "reads" {
			committed = up.readsSize
		}
		offset := committed
		if q := r.URL.Query().Get("offset"); q != "" {
			n, err := strconv.ParseInt(q, 10, 64)
			if err != nil || n < 0 {
				jsonError(w, http.StatusBadRequest, "bad offset: "+q)
				return
			}
			offset = n
		}
		if offset > committed {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":            fmt.Sprintf("offset %d is past the committed extent %d", offset, committed),
				"reason":           reasonBadOffset,
				"committed_offset": committed,
			})
			return
		}
		// The size cap charges only bytes that extend the committed extent:
		// a chunk at offset grows this part by offset+len-committed, so a
		// retransmit of already-committed bytes (a lost ACK) is free and stays
		// idempotent even when the upload sits at the cap.
		total := up.refSize + up.readsSize
		limit := s.MaxUploadBytes - total + (committed - offset)
		if limit < 0 {
			limit = 0
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit+1))
		if err != nil && !errors.As(err, new(*http.MaxBytesError)) && int64(len(body)) <= limit {
			// A transient body-read failure (client vanished mid-chunk, network
			// blip) fails only this request; the job stays uploading at its
			// committed offset so the client can resume — that is the whole
			// point of the chunked protocol.
			jsonError(w, http.StatusBadRequest, "reading chunk body: "+err.Error())
			return
		}
		if err != nil || int64(len(body)) > limit {
			// Oversized upload: shed with the admission envelope and fail the
			// job so its queue slot frees instead of lingering half-fed.
			up.mu.Unlock()
			s.failUploadingJob(job, fmt.Sprintf("upload exceeds the %d byte cap", s.MaxUploadBytes))
			up.mu.Lock()
			writeAdmissionError(w, &admissionError{
				status: http.StatusRequestEntityTooLarge, reason: reasonTooLarge,
				msg: fmt.Sprintf("upload exceeds the %d byte cap", s.MaxUploadBytes), retryAfter: time.Second,
			})
			return
		}
		up.lastActivity = time.Now()
		if offset < committed {
			if offset+int64(len(body)) <= committed {
				// Retransmit of bytes already committed (the ACK was lost):
				// acknowledge idempotently.
				writeJSON(w, http.StatusOK, map[string]any{"id": job.ID, "part": part, "offset": committed})
				return
			}
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":            fmt.Sprintf("chunk [%d,%d) straddles the committed extent %d", offset, offset+int64(len(body)), committed),
				"reason":           reasonBadOffset,
				"committed_offset": committed,
			})
			return
		}
		if err := s.appendChunk(job, up, part, body); err != nil {
			s.log.Error("appending upload chunk failed", "job", job.ID, "part", part, "err", err)
			jsonError(w, http.StatusInternalServerError, "could not persist chunk")
			return
		}
		newCommitted := up.refSize
		if part == "reads" {
			newCommitted = up.readsSize
		}
		s.mUploadChunks.With(part).Inc()
		s.mUploadBytes.With(part).Add(float64(len(body)))
		writeJSON(w, http.StatusOK, map[string]any{"id": job.ID, "part": part, "offset": newCommitted})
	}
}

// appendChunk commits chunk bytes to a part; up.mu is held. Durable mode
// appends to the journal's payload file (no per-chunk fsync: a crash-torn
// tail just lowers the committed offset the client resumes from).
func (s *Server) appendChunk(job *Job, up *uploadState, part string, body []byte) error {
	if s.journal != nil {
		refRel, readsRel := payloadNames(job.ID)
		rel := refRel
		if part == "reads" {
			rel = readsRel
		}
		f, err := os.OpenFile(s.journal.abs(rel), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(body); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if part == "reads" {
		up.readsBuf = append(up.readsBuf, body...)
	} else {
		up.refBuf = append(up.refBuf, body...)
	}
	if part == "reads" {
		up.readsSize += int64(len(body))
	} else {
		up.refSize += int64(len(body))
	}
	return nil
}

// handleFinalize seals a chunked payload and queues the job. Finalize is
// idempotent: repeating it after the job launched answers 200 with the job's
// current state instead of erroring a retrying client.
func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobByRequest(r)
	if err != nil {
		jsonError(w, http.StatusNotFound, err.Error())
		return
	}
	s.mu.Lock()
	if job.upload == nil {
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  fmt.Sprintf("job %d was not submitted through the chunked protocol", job.ID),
			"reason": reasonWrongState,
		})
		return
	}
	if job.State != StateUploading {
		payload := job.toJSON()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, payload)
		return
	}
	if s.draining {
		s.mu.Unlock()
		writeAdmissionError(w, &admissionError{
			status: http.StatusServiceUnavailable, reason: reasonDraining,
			msg: "server is draining; not accepting new jobs", retryAfter: drainRetryAfter,
		})
		return
	}
	up := job.upload
	up.mu.Lock()
	refN, readsN := up.refSize, up.readsSize
	up.mu.Unlock()
	if refN == 0 || readsN == 0 {
		s.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":            "finalize before both parts were uploaded",
			"reason":           reasonEmptyPayload,
			"reference_offset": refN,
			"reads_offset":     readsN,
		})
		return
	}
	s.setJobStateLocked(job, StateQueued)
	// Seal before the payload is fsync'd and handed to the parser: a chunk
	// PUT that passed its state check before this transition re-checks the
	// flag under up.mu and is refused instead of appending to a live payload.
	up.seal()
	// Cover the finalize->launch window in the drain WaitGroup, exactly like
	// admitJob does for buffered submissions; acceptAndLaunch drops it.
	s.wg.Add(1)
	s.mu.Unlock()

	in := jobInput{}
	if s.journal != nil {
		refRel, readsRel := payloadNames(job.ID)
		// fsync the accumulated chunks before the accepted record references
		// them — the record must never promise bytes a crash could lose.
		if err := syncFiles(s.journal.abs(refRel), s.journal.abs(readsRel)); err != nil {
			s.wg.Done()
			s.failUploadingJob(job, "persisting payload: "+err.Error())
			jsonError(w, http.StatusInternalServerError, "could not persist job")
			return
		}
		in.refPath, in.readsPath = s.journal.abs(refRel), s.journal.abs(readsRel)
	} else {
		up.mu.Lock()
		in.refRaw, in.readsRaw = up.refBuf, up.readsBuf
		up.mu.Unlock()
	}
	if err := s.acceptAndLaunch(job, in); err != nil {
		s.log.Error("accepting finalized job failed", "job", job.ID, "err", err)
		jsonError(w, http.StatusInternalServerError, "could not persist job")
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": job.ID, "state": string(StateQueued)})
}

// syncFiles fsyncs each named file.
func syncFiles(paths ...string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// sweepStalledUploads fails uploading jobs idle past the configured timeout,
// so an abandoned client cannot hold an admission queue slot forever. Returns
// how many were failed.
func (s *Server) sweepStalledUploads(now time.Time) int {
	timeout := s.cfg.UploadTimeout
	if timeout <= 0 {
		return 0
	}
	s.mu.Lock()
	var stalled []*Job
	for _, j := range s.jobs {
		if j.State != StateUploading || j.upload == nil {
			continue
		}
		j.upload.mu.Lock()
		last := j.upload.lastActivity
		j.upload.mu.Unlock()
		if last.IsZero() {
			last = j.Created
		}
		if now.Sub(last) > timeout {
			stalled = append(stalled, j)
		}
	}
	s.mu.Unlock()
	for _, j := range stalled {
		s.log.Warn("failing stalled upload", "job", j.ID, "timeout", timeout)
		s.failUploadingJob(j, fmt.Sprintf("upload stalled past the %v timeout", timeout))
	}
	return len(stalled)
}
