package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"bwaver/internal/fastx"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
)

// memTestData renders a reference plus an interleaved paired-end read set as
// the FASTA/FASTQ wire forms a submission carries.
func memTestData(t *testing.T) (refFasta, readsFastq []byte, readCount int) {
	t.Helper()
	ref, err := readsim.Genome(readsim.GenomeConfig{Length: 20000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := readsim.SimulatePairs(ref, readsim.PairConfig{
		Count: 25, ReadLength: 70, InsertMean: 250, InsertStdDev: 25,
		MappingRatio: 0.9, ErrorRate: 0.01, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	fw := fastx.NewWriter(&fb, fastx.FASTA, false)
	if err := fw.Write(&fastx.Record{ID: "memref", Seq: []byte(ref.String())}); err != nil {
		t.Fatal(err)
	}
	fw.Close()
	var qb bytes.Buffer
	qw := fastx.NewWriter(&qb, fastx.FASTQ, false)
	for _, p := range pairs {
		if err := qw.Write(&fastx.Record{ID: p.ID + "/1", Seq: []byte(p.R1.String())}); err != nil {
			t.Fatal(err)
		}
		if err := qw.Write(&fastx.Record{ID: p.ID + "/2", Seq: []byte(p.R2.String())}); err != nil {
			t.Fatal(err)
		}
	}
	qw.Close()
	return fb.Bytes(), qb.Bytes(), 2 * len(pairs)
}

// fetchSAM downloads a finished job's results and asserts the SAM shape:
// header first, one record line per read.
func fetchSAM(t *testing.T, ts *httptest.Server, loc string, readCount int) string {
	t.Helper()
	resp, err := http.Get(ts.URL + loc + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "sam") {
		t.Errorf("results content type %q, want SAM", ct)
	}
	text := string(body)
	if !strings.HasPrefix(text, "@HD\t") {
		t.Fatalf("results do not start with a SAM header:\n%.200s", text)
	}
	var headers, records int
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "@") {
			headers++
			continue
		}
		records++
		if fields := strings.Split(line, "\t"); len(fields) < 11 {
			t.Fatalf("SAM record has %d fields: %q", len(fields), line)
		}
	}
	if records != readCount {
		t.Fatalf("%d SAM records, want %d", records, readCount)
	}
	if headers < 3 { // @HD, @SQ, @PG
		t.Errorf("only %d header lines", headers)
	}
	return text
}

// TestMemJobEndToEnd runs a mode=mem-pe job on the faulted FPGA farm and on
// the CPU baseline and demands bit-identical SAM, a populated stream, and
// populated pipeline counters.
func TestMemJobEndToEnd(t *testing.T) {
	refFasta, readsFastq, readCount := memTestData(t)
	plan, err := fpga.ParseFaultPlan("seed=7,query=0.25,kernel=0.15")
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(Config{
		Devices: 3, FaultPlan: plan, VerifyStride: 4, StreamBatch: 16,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fpgaLoc := submitJob(t, s, ts,
		map[string]string{"backend": "fpga", "mode": "mem-pe"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	cpuLoc := submitJob(t, s, ts,
		map[string]string{"backend": "cpu", "mode": "mem-pe"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	fpgaSAM := fetchSAM(t, ts, fpgaLoc, readCount)
	cpuSAM := fetchSAM(t, ts, cpuLoc, readCount)
	if fpgaSAM != cpuSAM {
		t.Error("FPGA and CPU backends produced different SAM output")
	}
	if !strings.Contains(fpgaSAM, "\t=\t") {
		t.Error("no record carries a mate reference (RNEXT =)")
	}

	// The job JSON carries the mode and a mapped count.
	id := strings.TrimPrefix(fpgaLoc, "/jobs/")
	resp, err := http.Get(ts.URL + "/api/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		State  string `json:"state"`
		Mode   string `json:"mode"`
		Mapped int    `json:"mapped"`
		Reads  int    `json:"reads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.State != "done" || job.Mode != "mem-pe" {
		t.Fatalf("job = %+v", job)
	}
	if job.Mapped < readCount*8/10 {
		t.Errorf("only %d/%d reads mapped", job.Mapped, job.Reads)
	}

	// The NDJSON stream replays one row per read.
	req, _ := http.NewRequest("GET", ts.URL+"/api/jobs/"+id+"/stream", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	streamBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rows, mapped int
	for _, line := range strings.Split(strings.TrimSpace(string(streamBody)), "\n") {
		var row struct {
			Event string `json:"event"`
			Read  string `json:"read"`
			Bool  bool   `json:"mapped"`
			CIGAR string `json:"cigar"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if row.Event != "" {
			continue // terminal summary
		}
		rows++
		if row.Bool {
			mapped++
			if row.CIGAR == "" {
				t.Errorf("mapped row %s has no CIGAR", row.Read)
			}
		}
	}
	if rows != readCount {
		t.Errorf("stream holds %d rows, want %d", rows, readCount)
	}
	if mapped != job.Mapped {
		t.Errorf("stream mapped count %d, job reports %d", mapped, job.Mapped)
	}

	// /api/stats exposes the aggregate pipeline counters.
	resp, err = http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Mem struct {
			Reads      int `json:"reads"`
			Seeds      int `json:"seeds"`
			Extensions int `json:"extensions"`
			Cells      int `json:"dp_cells"`
		} `json:"mem"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Mem.Reads != 2*readCount {
		t.Errorf("stats cover %d reads, want %d (both jobs)", stats.Mem.Reads, 2*readCount)
	}
	if stats.Mem.Seeds == 0 || stats.Mem.Extensions == 0 || stats.Mem.Cells == 0 {
		t.Errorf("pipeline counters empty: %+v", stats.Mem)
	}

	// /metrics exports the same counters.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"bwaver_mem_reads_total", "bwaver_mem_seeds_total", "bwaver_mem_dp_cells_total"} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("metric %s not exported", name)
		}
	}
}

// TestMemJobSingleEnd maps the same reads without pairing: records must not
// carry pairing flags.
func TestMemJobSingleEnd(t *testing.T) {
	refFasta, readsFastq, readCount := memTestData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	loc := submitJob(t, s, ts,
		map[string]string{"backend": "cpu", "mode": "mem"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	text := fetchSAM(t, ts, loc, readCount)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		fields := strings.Split(line, "\t")
		flag, err := strconv.Atoi(fields[1])
		if err != nil {
			t.Fatalf("bad flag %q", fields[1])
		}
		if flag&0x1 != 0 {
			t.Fatalf("single-end record carries the paired flag: %q", line)
		}
	}
}

// TestMemModeValidation exercises the submission-parameter gate.
func TestMemModeValidation(t *testing.T) {
	refFasta, readsFastq, _ := memTestData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	submit := func(fields map[string]string) int {
		t.Helper()
		body, ctype := buildUpload(t, fields,
			map[string][]byte{"reference": refFasta, "reads": readsFastq})
		resp, err := http.Post(ts.URL+"/jobs", ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := submit(map[string]string{"mode": "bwa"}); code != http.StatusBadRequest {
		t.Errorf("unknown mode accepted: %d", code)
	}
	if code := submit(map[string]string{"mode": "mem", "mismatches": "2"}); code != http.StatusBadRequest {
		t.Errorf("mode=mem with a mismatch budget accepted: %d", code)
	}
	s.Wait()
}
