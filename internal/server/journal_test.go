package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bwaver/internal/core"
)

// snapshotDir copies src into a fresh temp directory, simulating the disk
// state a crash would leave behind at that instant.
func snapshotDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func fetchResults(t *testing.T, ts *httptest.Server, id int) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + itoa(id) + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results for job %d returned %d", id, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func waitForState(t *testing.T, ts *httptest.Server, id int, want JobState) jobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j := getJobJSON(t, ts, id)
		if j.State == string(want) {
			return j
		}
		if JobState(j.State).terminal() || time.Now().After(deadline) {
			t.Fatalf("job %d state %q (err %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The crash-recovery contract: a server killed with one job finished and one
// mid-flight comes back with the finished job's results intact and the
// interrupted job re-queued, re-run, and bit-identical to the undisturbed
// run — both jobs mapped the same upload.
func TestCrashRecoveryReplaysJobs(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	stateDir := t.TempDir()
	s, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var hookOnce sync.Once
	entered := make(chan int, 4)
	s.testHookBeforeRun = func(j *Job, ctx context.Context) {
		if j.ID != 2 {
			return
		}
		entered <- j.ID
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer hookOnce.Do(func() { close(release) })

	upload := map[string][]byte{"reference": refFasta, "reads": readsFastq}
	submitJob(t, s, ts, map[string]string{"backend": "cpu"}, upload)
	waitForState(t, ts, 1, StateDone)
	goldenResults := fetchResults(t, ts, 1)

	submitJob(t, s, ts, map[string]string{"backend": "cpu"}, upload)
	<-entered // job 2 is running, held by the hook: mid-flight

	// "Crash": snapshot the disk as-is and bring up a fresh server on the
	// copy. The first server keeps running against the original directory;
	// nothing it does after this point can leak into the snapshot.
	crashed := snapshotDir(t, stateDir)
	s2, err := Open(Config{StateDir: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// Job 1 was terminal: restored verbatim, results served again.
	j1 := getJobJSON(t, ts2, 1)
	if j1.State != string(StateDone) {
		t.Fatalf("restored job 1 state %q, want done", j1.State)
	}
	if got := fetchResults(t, ts2, 1); string(got) != string(goldenResults) {
		t.Error("restored results differ from the originals")
	}

	// Job 2 was mid-flight: re-queued from its journaled payloads and run
	// to completion, producing the same mapping bit for bit.
	waitForState(t, ts2, 2, StateDone)
	if got := fetchResults(t, ts2, 2); string(got) != string(goldenResults) {
		t.Error("replayed job results differ from the undisturbed run")
	}
	st := getStats(t, ts2)
	if st.Admission.JobsReplayed != 1 {
		t.Errorf("jobs_replayed = %d, want 1", st.Admission.JobsReplayed)
	}
	if !st.Admission.Durable {
		t.Error("stats do not report the server as durable")
	}

	hookOnce.Do(func() { close(release) })
	s.Wait()
	s.Close()
}

// A restored job must survive its index being evicted while it replays: with
// a one-entry cache and two replayed jobs over different references, the LRU
// evicts whichever index the other job displaced, and both jobs must still
// finish via the single-flight rebuild (or the disk spill) rather than fail.
func TestReplaySurvivesCacheEviction(t *testing.T) {
	refA, readsA := testDataSmall(t)
	refB, readsB := bigTestData(t, 77)
	stateDir := t.TempDir()
	s, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	var holdOnce sync.Once
	s.testHookBeforeRun = func(j *Job, ctx context.Context) {
		select {
		case <-hold:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s.Handler())
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refA, "reads": readsA})
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refB, "reads": readsB})
	// Both jobs are journaled as accepted and neither has finished: the
	// snapshot captures two unfinished jobs.
	crashed := snapshotDir(t, stateDir)
	holdOnce.Do(func() { close(hold) })
	s.Wait()
	ts.Close()
	s.Close()

	// Restart with room for only one cached index. Both replayed jobs run
	// concurrently (2 slots), so each one's entry is evicted while the
	// other builds — completion proves eviction never fails a replay.
	s2, err := Open(Config{StateDir: crashed, CacheEntries: 1, MaxConcurrentJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	waitForState(t, ts2, 1, StateDone)
	waitForState(t, ts2, 2, StateDone)
	if st := getStats(t, ts2); st.Admission.JobsReplayed != 2 {
		t.Errorf("jobs_replayed = %d, want 2", st.Admission.JobsReplayed)
	}
}

// A corrupt spilled index must be rejected by its checksum and rebuilt
// transparently: the job that needed it still completes, and the bad file is
// replaced by a good one.
func TestCorruptSpillRejectedAndRebuilt(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	stateDir := t.TempDir()
	s, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	upload := map[string][]byte{"reference": refFasta, "reads": readsFastq}
	submitJob(t, s, ts, map[string]string{"backend": "cpu"}, upload)
	waitForState(t, ts, 1, StateDone)
	golden := fetchResults(t, ts, 1)
	ts.Close()
	s.Close()

	spillDir := filepath.Join(stateDir, indexSpillDir)
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("spill dir holds %d files, want 1", len(entries))
	}
	spill := filepath.Join(spillDir, entries[0].Name())
	data, err := os.ReadFile(spill)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(spill, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh server's cache is cold, so the repeat submission goes to the
	// (bit-flipped) spill file first. The checksum must reject it and the
	// job must rebuild and succeed with identical output.
	s2, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	submitJob(t, s2, ts2, map[string]string{"backend": "cpu"}, upload)
	waitForState(t, ts2, 2, StateDone)
	if got := fetchResults(t, ts2, 2); string(got) != string(golden) {
		t.Error("rebuilt index produced different results")
	}
	// The rejected file was removed and the rebuild spilled a fresh copy.
	if _, err := core.LoadFile(spill); err != nil {
		t.Errorf("spill file not replaced by a valid one: %v", err)
	}
	if st := getStats(t, ts2); st.Cache.DiskHits != 0 {
		t.Errorf("disk_hits = %d, want 0 (corrupt file must not count as a hit)", st.Cache.DiskHits)
	}
}

// A warm spill file short-circuits construction on a cold cache.
func TestSpillServesRestart(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	stateDir := t.TempDir()
	s, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	upload := map[string][]byte{"reference": refFasta, "reads": readsFastq}
	submitJob(t, s, ts, map[string]string{"backend": "cpu"}, upload)
	waitForState(t, ts, 1, StateDone)
	ts.Close()
	s.Close()

	s2, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	submitJob(t, s2, ts2, map[string]string{"backend": "cpu"}, upload)
	j := waitForState(t, ts2, 2, StateDone)
	if !j.CacheHit {
		t.Error("restart repeat did not report a cache hit from the spill")
	}
	if st := getStats(t, ts2); st.Cache.DiskHits != 1 {
		t.Errorf("disk_hits = %d, want 1", st.Cache.DiskHits)
	}
}

// Concurrent submits racing a drain must neither corrupt state nor leave an
// admitted job unfinished: every 303 (accepted) job reaches a terminal state
// and every rejection is the structured draining 503. Run under -race.
func TestDrainVersusConcurrentSubmits(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s, err := Open(Config{StateDir: t.TempDir(), MaxQueue: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				body, ctype := buildUpload(t, map[string]string{"backend": "cpu"},
					map[string][]byte{"reference": refFasta, "reads": readsFastq})
				resp, err := client.Post(ts.URL+"/jobs", ctype, body)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusSeeOther:
					mu.Lock()
					accepted++
					mu.Unlock()
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("draining 503 without Retry-After")
					}
				default:
					t.Errorf("submit returned %d", resp.StatusCode)
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	// Drain returned: every accepted job must be terminal, and the server
	// must refuse further work.
	s.mu.Lock()
	for id, j := range s.jobs {
		if !j.State.terminal() {
			t.Errorf("job %d still %s after drain", id, j.State)
		}
	}
	tracked := len(s.jobs)
	s.mu.Unlock()
	if tracked != accepted {
		t.Errorf("tracked %d jobs, accepted %d", tracked, accepted)
	}
	body, ctype := buildUpload(t, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	resp, err := client.Post(ts.URL+"/jobs", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit returned %d, want 503", resp.StatusCode)
	}
	if !s.Draining() {
		t.Error("server not draining after Drain")
	}
}

// A TTL-evicted job stays gone after a restart: the evicted record in the
// journal wins over the job's earlier done record, and compaction drops it.
func TestEvictionSurvivesRestart(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	stateDir := t.TempDir()
	s, err := Open(Config{StateDir: stateDir, JobTTL: 10 * time.Millisecond, JanitorInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	waitForState(t, ts, 1, StateDone)
	if n := s.evictExpiredJobs(time.Now().Add(time.Second)); n != 1 {
		t.Fatalf("evicted %d jobs, want 1", n)
	}
	ts.Close()
	s.Close()

	s2, err := Open(Config{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/api/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job returned %d after restart, want 404", resp.StatusCode)
	}
	// The results file was removed with the eviction.
	if entries, err := os.ReadDir(filepath.Join(stateDir, resultsDir)); err != nil {
		t.Fatal(err)
	} else if len(entries) != 0 {
		t.Errorf("results dir holds %d files after eviction, want 0", len(entries))
	}
}
