package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestEffectiveTimeout covers the budget-capping satellite fix: a forwarded
// submission's X-Bwaver-Timeout-Ms may only shrink the worker's own job
// timeout, never extend it, and garbage is ignored.
func TestEffectiveTimeout(t *testing.T) {
	withTimeout, err := Open(Config{JobTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer withTimeout.Close()
	unbounded, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer unbounded.Close()

	cases := []struct {
		srv    *Server
		header string
		want   time.Duration
	}{
		{withTimeout, "", 5 * time.Second},
		{withTimeout, "100", 100 * time.Millisecond}, // tighter budget wins
		{withTimeout, "60000", 5 * time.Second},      // looser budget cannot extend
		{withTimeout, "garbage", 5 * time.Second},
		{withTimeout, "-50", 5 * time.Second},
		{withTimeout, "0", 5 * time.Second},
		{unbounded, "", 0},
		{unbounded, "250", 250 * time.Millisecond}, // budget bounds an unbounded server
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodPost, "/jobs", nil)
		if c.header != "" {
			r.Header.Set(TimeoutBudgetHeader, c.header)
		}
		if got := c.srv.effectiveTimeout(r); got != c.want {
			t.Errorf("effectiveTimeout(header=%q, cfg=%v) = %v, want %v",
				c.header, c.srv.cfg.JobTimeout, got, c.want)
		}
	}
}

// TestRingKeyDeterministic: the exported ring key is the index cache key — a
// pure function of reference content and index parameters.
func TestRingKeyDeterministic(t *testing.T) {
	refFasta, _, _ := testData(t)
	k1, err := RingKey(refFasta, DefaultB, DefaultSF, 10)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := RingKey(refFasta, DefaultB, DefaultSF, 10)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == "" || k1 != k2 {
		t.Fatalf("RingKey not deterministic: %q vs %q", k1, k2)
	}
	k3, err := RingKey(refFasta, DefaultB+1, DefaultSF, 10)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("RingKey ignores the RRR block size")
	}
	if _, err := RingKey([]byte("not fasta at all\x00"), DefaultB, DefaultSF, 10); err == nil {
		t.Fatal("RingKey accepted an unparseable reference")
	}
}

// TestHealthQueueFields: /api/health advertises the queue-pressure fields the
// gateway's heartbeat consumes, alongside the pre-existing payload.
func TestHealthQueueFields(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"status", "draining", "queue_depth", "jobs_in_flight"} {
		if _, ok := m[key]; !ok {
			t.Errorf("/api/health lacks %q: %v", key, m)
		}
	}
	if qd, ok := m["queue_depth"].(float64); !ok || qd != 0 {
		t.Errorf("idle queue_depth = %v, want 0", m["queue_depth"])
	}
}

// TestRequestIDStamping: the server echoes a caller's X-Request-Id (or mints
// one) and records it on the job.
func TestRequestIDStamping(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Minted when absent.
	resp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("server did not mint an X-Request-Id")
	}

	// Echoed and attached to the job when supplied (the gateway's case).
	refFasta, readsFastq, _ := testData(t)
	body, ctype := buildUpload(t, map[string]string{"backend": "cpu"}, map[string][]byte{
		"reference": refFasta, "reads": readsFastq,
	})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs", body)
	req.Header.Set("Content-Type", ctype)
	req.Header.Set("Accept", "application/json")
	req.Header.Set("X-Request-Id", "gw-test-123")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var job map[string]any
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "gw-test-123" {
		t.Fatalf("echoed X-Request-Id = %q, want the caller's", got)
	}
	if got, _ := job["request_id"].(string); got != "gw-test-123" {
		t.Fatalf("job record request_id = %q, want gw-test-123", got)
	}
}
