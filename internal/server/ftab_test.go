package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestStatsFtabBlock: with a configured prefix-table order, a completed job
// leaves a cached index whose table shows up in /api/stats — order, bytes,
// and lookup counters (every short-read search that consulted the table).
func TestStatsFtabBlock(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	s := NewWithConfig(Config{FtabK: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	st := getStats(t, ts)
	if st.Ftab.K != 4 {
		t.Errorf("stats ftab k = %d, want 4", st.Ftab.K)
	}
	if st.Ftab.SizeBytes <= 0 {
		t.Error("stats report no ftab bytes despite a cached table")
	}
	// Every read is 40 bp >= k over the pure-ACGT alphabet, so both
	// orientations of every read hit the table.
	if st.Ftab.Hits == 0 || st.Ftab.Misses != 0 || st.Ftab.Short != 0 {
		t.Errorf("lookup counters hits=%d misses=%d short=%d", st.Ftab.Hits, st.Ftab.Misses, st.Ftab.Short)
	}

	// The scrape-time metrics expose the same figures.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`bwaver_ftab_lookups_total{result="hit"}`,
		`bwaver_ftab_bytes`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestStatsFtabDisabled: the zero-value config builds no table and the stats
// block stays zero — the pre-ftab behavior.
func TestStatsFtabDisabled(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	st := getStats(t, ts)
	if st.Ftab.K != 0 || st.Ftab.SizeBytes != 0 || st.Ftab.Hits != 0 {
		t.Errorf("disabled ftab leaked into stats: %+v", st.Ftab)
	}
}
