package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bwaver/internal/fpga"
)

// fetchTSV downloads a finished job's results.
func fetchTSV(t *testing.T, ts *httptest.Server, loc string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + loc + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("results returned %d: %s", resp.StatusCode, b)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fetchJobJSON reads a job's API representation given its page location.
func fetchJobJSON(t *testing.T, ts *httptest.Server, loc string) jobJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api" + loc)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func fetchStats(t *testing.T, ts *httptest.Server) statsJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s statsJSON
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestJobSurvivesDeadDevice is the acceptance scenario: a farm with a
// persistently broken card still completes the job with mappings
// byte-identical to the CPU backend, and the recovery is visible in
// /api/stats and /api/health.
func TestJobSurvivesDeadDevice(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	plan, err := fpga.ParseFaultPlan("seed=7,persistent=0:kernel")
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(Config{
		Devices:          2,
		FaultPlan:        plan,
		MaxRetries:       2,
		BreakerThreshold: 2,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fpgaLoc := submitJob(t, s, ts,
		map[string]string{"backend": "fpga"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	job := fetchJobJSON(t, ts, fpgaLoc)
	if job.State != "done" {
		t.Fatalf("job state %q (error %q), want done", job.State, job.Error)
	}
	if job.Fallback {
		t.Fatalf("job fell back to CPU (%s); the healthy card should have absorbed the work", job.FallbackReason)
	}

	// Byte-identical to a CPU-backend job on the same inputs.
	cpuLoc := submitJob(t, s, ts,
		map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	if got, want := fetchTSV(t, ts, fpgaLoc), fetchTSV(t, ts, cpuLoc); !bytes.Equal(got, want) {
		t.Fatalf("FPGA-with-faults TSV differs from CPU TSV:\n%s\n---\n%s", got, want)
	}

	stats := fetchStats(t, ts)
	if stats.Resilience.Faults["kernel"] == 0 {
		t.Errorf("stats faults = %v, want kernel faults recorded", stats.Resilience.Faults)
	}
	if stats.Resilience.Retries == 0 || stats.Resilience.Redistributed == 0 {
		t.Errorf("resilience = %+v, want retries and redistribution", stats.Resilience)
	}
	if stats.Resilience.Fallbacks != 0 {
		t.Errorf("resilience = %+v, want no fallbacks", stats.Resilience)
	}

	// Health: device 0's breaker opened (threshold 2 < 3 attempts), so the
	// service is degraded but not critical.
	resp, err := http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("health content type %q", ct)
	}
	var health healthJSON
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Errorf("health status %q, want degraded", health.Status)
	}
	if len(health.Devices) != 2 || health.Devices[0].Breaker != "open" || health.Devices[1].Breaker != "closed" {
		t.Errorf("device health = %+v", health.Devices)
	}
}

// TestCPUFallback: with the only device dead, the job transparently reruns
// on the CPU and says so.
func TestCPUFallback(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	plan, err := fpga.ParseFaultPlan("seed=7,persistent=0:kernel")
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(Config{
		Devices:          1,
		FaultPlan:        plan,
		MaxRetries:       1,
		BreakerThreshold: 2,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	loc := submitJob(t, s, ts,
		map[string]string{"backend": "fpga"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	job := fetchJobJSON(t, ts, loc)
	if job.State != "done" {
		t.Fatalf("job state %q (error %q), want done via fallback", job.State, job.Error)
	}
	if !job.Fallback || job.FallbackReason == "" {
		t.Fatalf("job = %+v, want fallback recorded", job)
	}

	cpuLoc := submitJob(t, s, ts,
		map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	if got, want := fetchTSV(t, ts, loc), fetchTSV(t, ts, cpuLoc); !bytes.Equal(got, want) {
		t.Fatalf("fallback TSV differs from CPU TSV")
	}

	stats := fetchStats(t, ts)
	if stats.Resilience.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", stats.Resilience.Fallbacks)
	}
	if stats.Resilience.Exhausted == 0 {
		t.Errorf("resilience = %+v, want exhausted runs", stats.Resilience)
	}

	// The job page mentions the fallback.
	resp, err := http.Get(ts.URL + loc)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "fell back to CPU") {
		t.Errorf("job page does not mention the fallback:\n%s", page)
	}
}

// TestFallbackPolicyFail: -fallback=fail surfaces the device error instead.
func TestFallbackPolicyFail(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	plan, err := fpga.ParseFaultPlan("seed=7,persistent=0:kernel")
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(Config{
		Devices:    1,
		FaultPlan:  plan,
		MaxRetries: 1,
		Fallback:   "fail",
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	loc := submitJob(t, s, ts,
		map[string]string{"backend": "fpga"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	job := fetchJobJSON(t, ts, loc)
	if job.State != "failed" {
		t.Fatalf("job state %q, want failed under -fallback=fail", job.State)
	}
	if job.Fallback {
		t.Error("fallback recorded despite fail policy")
	}
	if !strings.Contains(job.Error, "no healthy devices") {
		t.Errorf("job error %q, want the device failure", job.Error)
	}
}

// TestFallbackTwoPass: the approximate (mismatch-budget) flow falls back too.
func TestFallbackTwoPass(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	plan, err := fpga.ParseFaultPlan("seed=7,persistent=0:query")
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(Config{Devices: 1, FaultPlan: plan, MaxRetries: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	loc := submitJob(t, s, ts,
		map[string]string{"backend": "fpga", "mismatches": "1"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	job := fetchJobJSON(t, ts, loc)
	if job.State != "done" || !job.Fallback {
		t.Fatalf("job = %+v, want done via fallback", job)
	}

	cpuLoc := submitJob(t, s, ts,
		map[string]string{"backend": "cpu", "mismatches": "1"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	if got, want := fetchTSV(t, ts, loc), fetchTSV(t, ts, cpuLoc); !bytes.Equal(got, want) {
		t.Fatalf("two-pass fallback TSV differs from CPU TSV")
	}
}

// TestAPIErrorsAreJSON: every /api/* error carries the structured envelope.
func TestAPIErrorsAreJSON(t *testing.T) {
	s := NewWithConfig(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{"GET", "/api/jobs/999", http.StatusNotFound},
		{"GET", "/api/jobs/notanumber", http.StatusNotFound},
		{"DELETE", "/api/jobs/999", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s %s: content type %q, want application/json", tc.method, tc.path, ct)
		}
		var envelope struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == "" {
			t.Errorf("%s %s: body %q is not an error envelope", tc.method, tc.path, body)
		}
	}
}

// TestTransientFaultsRecoverInline: a flaky (not dead) device heals through
// retries alone; no fallback, no open breaker at the end of the run.
func TestTransientFaultsRecoverInline(t *testing.T) {
	refFasta, readsFastq, _ := testData(t)
	plan, err := fpga.ParseFaultPlan("seed=12,query=0.3,corrupt=0.2")
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(Config{
		Devices:         2,
		FaultPlan:       plan,
		MaxRetries:      4,
		BreakerCooldown: time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	loc := submitJob(t, s, ts,
		map[string]string{"backend": "fpga"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()

	job := fetchJobJSON(t, ts, loc)
	if job.State != "done" {
		t.Fatalf("job state %q (error %q)", job.State, job.Error)
	}
	cpuLoc := submitJob(t, s, ts,
		map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	if got, want := fetchTSV(t, ts, loc), fetchTSV(t, ts, cpuLoc); !bytes.Equal(got, want) {
		t.Fatalf("flaky-device TSV differs from CPU TSV")
	}
}
