package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bwaver/internal/qc"
)

// Durable job journal. A bwaver-server restart used to lose every queued and
// running job silently; with a -state-dir the server now appends one fsync'd
// JSON record per lifecycle transition (accepted → running → done / failed /
// canceled, plus uploading for chunked ingest and evicted) to
// <state-dir>/journal.jsonl. Raw uploads are persisted under payloads/ when a
// job is accepted (chunked jobs stream there directly, chunk by chunk) and
// deleted once it is terminal; results TSVs and NDJSON stream logs are
// persisted under results/ before the done record that references them is
// written, so a record never points at data that a crash could have lost. On
// startup the journal is replayed: terminal jobs are restored pointing at
// their on-disk results, uploading jobs come back resumable at their
// committed offsets, unfinished jobs are re-queued against their saved
// payloads, and the log is compacted to one record per live job.
// Built indexes are spilled under indexes/ by the cache (see cache.go), so a
// replayed job usually skips reconstruction.

// Journal record types. uploading marks a chunked job whose payload is still
// arriving (its partial payload files are authoritative on disk);
// accepted/running mark forward progress; the three terminal types mirror
// JobState; evicted marks a TTL-swept job so replay does not resurrect it
// (compaction then drops it entirely).
const (
	recUploading = "uploading"
	recAccepted  = "accepted"
	recRunning   = "running"
	recDone      = "done"
	recFailed    = "failed"
	recCanceled  = "canceled"
	recEvicted   = "evicted"
)

// journalRecord is one line of journal.jsonl. Records are cumulative: an
// accepted record carries the job spec and payload references; terminal
// records carry the outcome. Compacted terminal snapshots carry both, so a
// compacted journal is self-contained line by line.
type journalRecord struct {
	Type string    `json:"type"`
	Job  int       `json:"job"`
	Time time.Time `json:"time"`

	// Spec (accepted records and compacted terminal snapshots).
	Backend      string `json:"backend,omitempty"`
	Mode         string `json:"mode,omitempty"`
	B            int    `json:"b,omitempty"`
	SF           int    `json:"sf,omitempty"`
	Mismatches   int    `json:"mismatches,omitempty"`
	RefPayload   string `json:"ref_payload,omitempty"`
	ReadsPayload string `json:"reads_payload,omitempty"`
	// QC is the job's quality-control policy, journaled with the spec so a
	// replayed job re-ingests under the same gates.
	QC *qc.Policy `json:"qc,omitempty"`
	// IdemKey is the client's Idempotency-Key, replayed with the job so
	// post-restart retries still map to it.
	IdemKey string `json:"idem_key,omitempty"`
	// RequestID is the X-Request-Id of the originating submission, restored
	// on replay so cross-process traces survive a worker restart.
	RequestID string    `json:"request_id,omitempty"`
	Created   time.Time `json:"created"`

	// Outcome.
	Error          string  `json:"error,omitempty"`
	RefName        string  `json:"ref_name,omitempty"`
	RefLength      int     `json:"ref_length,omitempty"`
	Reads          int     `json:"reads,omitempty"`
	Mapped         int     `json:"mapped,omitempty"`
	CacheHit       bool    `json:"cache_hit,omitempty"`
	Fallback       bool    `json:"fallback,omitempty"`
	FallbackReason string  `json:"fallback_reason,omitempty"`
	ParseMs        float64 `json:"parse_ms,omitempty"`
	BuildMs        float64 `json:"build_ms,omitempty"`
	MapMs          float64 `json:"map_ms,omitempty"`
	Results        string  `json:"results,omitempty"`
	// QCReport is the job's ingest accounting (attempted / malformed /
	// per-reason rejects / trimmed bases), persisted with the terminal
	// record so a restarted server's totals replay accounting-identically.
	QCReport *qc.Report `json:"qc_report,omitempty"`
	Finished time.Time  `json:"finished"`
}

// journal owns the state directory: the append-only log plus the payload and
// result files the records reference. All methods are safe for concurrent
// use and a nil *journal is a valid no-op (stateless server).
type journal struct {
	mu  sync.Mutex
	dir string
	f   *os.File
	log *slog.Logger
}

// Well-known names inside the state directory.
const (
	journalFile   = "journal.jsonl"
	payloadsDir   = "payloads"
	resultsDir    = "results"
	indexSpillDir = "indexes"
)

// openJournal creates the state-dir layout and opens the log for appending.
func openJournal(dir string, log *slog.Logger) (*journal, error) {
	for _, d := range []string{dir, filepath.Join(dir, payloadsDir), filepath.Join(dir, resultsDir), filepath.Join(dir, indexSpillDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("server: state dir: %w", err)
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: opening journal: %w", err)
	}
	return &journal{dir: dir, f: f, log: log}, nil
}

func (jl *journal) close() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
}

// append writes one record and fsyncs the log, so an acknowledged transition
// survives a crash in the very next instruction.
func (jl *journal) append(rec journalRecord) error {
	if jl == nil {
		return nil
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return fmt.Errorf("server: journal closed")
	}
	if _, err := jl.f.Write(line); err != nil {
		return fmt.Errorf("server: appending journal record: %w", err)
	}
	return jl.f.Sync()
}

// appendBestEffort journals a transition whose loss only degrades recovery
// fidelity (the job re-runs or re-reports); failures are logged, not fatal.
func (jl *journal) appendBestEffort(rec journalRecord) {
	if jl == nil {
		return
	}
	if err := jl.append(rec); err != nil {
		jl.log.Error("journal append failed", "type", rec.Type, "job", rec.Job, "err", err)
	}
}

// payloadNames returns the conventional payload file names for a job.
func payloadNames(id int) (ref, reads string) {
	return filepath.Join(payloadsDir, fmt.Sprintf("job-%d-ref", id)),
		filepath.Join(payloadsDir, fmt.Sprintf("job-%d-reads", id))
}

// resultsName returns the conventional results file name for a job.
func resultsName(id int) string {
	return filepath.Join(resultsDir, fmt.Sprintf("job-%d.tsv", id))
}

// abs resolves a state-dir-relative name to its absolute path.
func (jl *journal) abs(rel string) string {
	return filepath.Join(jl.dir, rel)
}

// writeFileSync persists data at rel (relative to the state dir) and fsyncs
// it, so a journal record written afterwards never references missing bytes.
func (jl *journal) writeFileSync(rel string, data []byte) error {
	path := filepath.Join(jl.dir, rel)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

func (jl *journal) readFile(rel string) ([]byte, error) {
	return os.ReadFile(filepath.Join(jl.dir, rel))
}

func (jl *journal) removeFiles(rels ...string) {
	for _, rel := range rels {
		if rel == "" {
			continue
		}
		os.Remove(filepath.Join(jl.dir, rel))
	}
}

// load reads every decodable record. A torn final line — the signature of a
// crash mid-append — is tolerated: replay stops at the first undecodable
// line and logs what it skipped, because everything before it was fsync'd.
func (jl *journal) load() ([]journalRecord, error) {
	f, err := os.Open(filepath.Join(jl.dir, journalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var recs []journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			jl.log.Warn("journal holds a torn record; ignoring the tail",
				"line", line, "err", err)
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, fmt.Errorf("server: scanning journal: %w", err)
	}
	return recs, nil
}

// compact atomically rewrites the journal to exactly recs (one snapshot per
// live job) and reopens the append handle. Called once at startup after
// replay, so the log does not grow without bound across restarts.
func (jl *journal) compact(recs []journalRecord) error {
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	path := filepath.Join(jl.dir, journalFile)
	tmp, err := os.CreateTemp(jl.dir, journalFile+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f != nil {
		jl.f.Close()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		jl.f = nil
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		jl.f = nil
		return err
	}
	jl.f = f
	return nil
}

// foldedJob is a job's state reconstructed from its journal records.
type foldedJob struct {
	spec journalRecord // cumulative spec fields (accepted / compacted)
	last journalRecord // most recent record, decides the state
}

// foldRecords reduces the log to per-job state, latest record winning, and
// drops evicted jobs. Order of spec vs. terminal records does not matter: a
// canceled-before-accepted pair (possible when a client cancels in the
// createJob→launch window) folds the same either way.
func foldRecords(recs []journalRecord) map[int]*foldedJob {
	jobs := map[int]*foldedJob{}
	for _, rec := range recs {
		fj := jobs[rec.Job]
		if fj == nil {
			fj = &foldedJob{}
			jobs[rec.Job] = fj
		}
		if rec.Backend != "" {
			fj.spec.Backend = rec.Backend
			fj.spec.Mode = rec.Mode
			fj.spec.B, fj.spec.SF, fj.spec.Mismatches = rec.B, rec.SF, rec.Mismatches
			fj.spec.RefPayload, fj.spec.ReadsPayload = rec.RefPayload, rec.ReadsPayload
			fj.spec.Created = rec.Created
		}
		if rec.QC != nil {
			fj.spec.QC = rec.QC
		}
		if rec.IdemKey != "" {
			fj.spec.IdemKey = rec.IdemKey
		}
		if rec.RequestID != "" {
			fj.spec.RequestID = rec.RequestID
		}
		// Progress records only advance the state (uploading → accepted →
		// running); terminal records override everything, whatever order the
		// log holds them in.
		switch rec.Type {
		case recUploading:
			if fj.last.Type == "" {
				fj.last = rec
			}
		case recAccepted:
			if fj.last.Type == "" || fj.last.Type == recUploading {
				fj.last = rec
			}
		default:
			fj.last = rec
		}
	}
	for id, fj := range jobs {
		if fj.last.Type == recEvicted {
			delete(jobs, id)
		}
	}
	return jobs
}

// snapshotRecord renders a job's current state as one self-contained record,
// the unit of journal compaction.
func snapshotRecord(j *Job) journalRecord {
	rec := journalRecord{
		Job:            j.ID,
		Time:           time.Now(),
		Backend:        j.Backend,
		Mode:           j.Mode,
		B:              j.B,
		SF:             j.SF,
		Mismatches:     j.Mismatches,
		IdemKey:        j.IdemKey,
		RequestID:      j.RequestID,
		Created:        j.Created,
		RefName:        j.RefName,
		RefLength:      j.RefLength,
		Reads:          j.Reads,
		Mapped:         j.Mapped,
		CacheHit:       j.CacheHit,
		Fallback:       j.FallbackUsed,
		FallbackReason: j.FallbackReason,
		Error:          j.Error,
		ParseMs:        float64(j.ParseTime) / float64(time.Millisecond),
		BuildMs:        float64(j.BuildTime) / float64(time.Millisecond),
		MapMs:          float64(j.MapTime) / float64(time.Millisecond),
		QCReport:       j.QCReport,
		Finished:       j.Finished,
	}
	if j.QC.Active() {
		pol := j.QC
		rec.QC = &pol
	}
	switch j.State {
	case StateDone:
		rec.Type = recDone
		rec.Results = resultsName(j.ID)
	case StateFailed:
		rec.Type = recFailed
	case StateCanceled:
		rec.Type = recCanceled
	case StateUploading:
		rec.Type = recUploading
		rec.RefPayload, rec.ReadsPayload = payloadNames(j.ID)
	default:
		rec.Type = recAccepted
		rec.RefPayload, rec.ReadsPayload = payloadNames(j.ID)
	}
	return rec
}

// journalAccept persists a job's inputs and appends its accepted record.
// This happens before launch: once the submit handler responds, the job is
// durable. Acceptance is the one transition whose journal failure fails the
// job — admitting work the server cannot make durable would break the
// crash-safety contract.
func (s *Server) journalAccept(job *Job, in jobInput) error {
	if s.journal == nil {
		return nil
	}
	refRel, readsRel := payloadNames(job.ID)
	// Chunked jobs already streamed their payloads to these files (fsync'd by
	// finalize), so only buffered submissions write them here.
	if in.refPath == "" {
		if err := s.journal.writeFileSync(refRel, in.refRaw); err != nil {
			return fmt.Errorf("persisting reference payload: %w", err)
		}
		if err := s.journal.writeFileSync(readsRel, in.readsRaw); err != nil {
			s.journal.removeFiles(refRel)
			return fmt.Errorf("persisting reads payload: %w", err)
		}
	}
	rec := journalRecord{
		Type:         recAccepted,
		Job:          job.ID,
		Backend:      job.Backend,
		Mode:         job.Mode,
		B:            job.B,
		SF:           job.SF,
		Mismatches:   job.Mismatches,
		RefPayload:   refRel,
		ReadsPayload: readsRel,
		IdemKey:      job.IdemKey,
		RequestID:    job.RequestID,
		Created:      job.Created,
	}
	if job.QC.Active() {
		pol := job.QC
		rec.QC = &pol
	}
	if err := s.journal.append(rec); err != nil {
		s.journal.removeFiles(refRel, readsRel)
		return err
	}
	return nil
}

// journalFinish records a terminal transition: results are persisted first
// (done jobs), then the terminal record, then the now-redundant payloads are
// deleted. Best-effort — the job already finished; a journal failure only
// means a restart re-runs it.
func (s *Server) journalFinish(job *Job, state JobState, results []byte, resultsPath string) {
	if s.journal == nil {
		return
	}
	rec := journalRecord{Job: job.ID, Finished: job.Finished}
	switch state {
	case StateDone:
		rec.Type = recDone
		rec.Results = resultsName(job.ID)
		// The emitter already wrote and fsync'd the TSV incrementally at the
		// journal-contract path; only jobs without one (replays of old-format
		// records) still need the buffered write.
		if resultsPath == "" {
			if err := s.journal.writeFileSync(rec.Results, results); err != nil {
				s.journal.log.Error("persisting job results failed; job will re-run after a restart",
					"job", job.ID, "err", err)
				return
			}
		}
	case StateFailed:
		rec.Type = recFailed
	case StateCanceled:
		rec.Type = recCanceled
	default:
		return
	}
	s.mu.Lock()
	rec.Error = job.Error
	rec.RefName = job.RefName
	rec.RefLength = job.RefLength
	rec.Reads = job.Reads
	rec.Mapped = job.Mapped
	rec.CacheHit = job.CacheHit
	rec.Fallback = job.FallbackUsed
	rec.FallbackReason = job.FallbackReason
	rec.ParseMs = float64(job.ParseTime) / float64(time.Millisecond)
	rec.BuildMs = float64(job.BuildTime) / float64(time.Millisecond)
	rec.MapMs = float64(job.MapTime) / float64(time.Millisecond)
	rec.QCReport = job.QCReport
	s.mu.Unlock()
	s.journal.appendBestEffort(rec)
	refRel, readsRel := payloadNames(job.ID)
	s.journal.removeFiles(refRel, readsRel)
}

// recover replays the journal into the server: terminal jobs come back with
// their results, unfinished jobs are re-queued against their saved payloads,
// and the log is compacted. Called from Open before the server accepts
// traffic.
func (s *Server) recover() error {
	recs, err := s.journal.load()
	if err != nil {
		return err
	}
	folded := foldRecords(recs)
	type relaunch struct {
		job *Job
		in  jobInput
	}
	var relaunches []relaunch
	var compacted []journalRecord

	// Deterministic order: ascending job ID.
	ids := make([]int, 0, len(folded))
	for id := range folded {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for k := i + 1; k < len(ids); k++ {
			if ids[k] < ids[i] {
				ids[i], ids[k] = ids[k], ids[i]
			}
		}
	}

	s.mu.Lock()
	for _, id := range ids {
		fj := folded[id]
		if id >= s.nextID {
			s.nextID = id + 1
		}
		job := &Job{
			ID:         id,
			Backend:    fj.spec.Backend,
			Mode:       fj.spec.Mode,
			B:          fj.spec.B,
			SF:         fj.spec.SF,
			Mismatches: fj.spec.Mismatches,
			IdemKey:    fj.spec.IdemKey,
			RequestID:  fj.spec.RequestID,
			Created:    fj.spec.Created,
			RefName:    fj.last.RefName,
			RefLength:  fj.last.RefLength,
			Reads:      fj.last.Reads,
			Mapped:     fj.last.Mapped,
			CacheHit:   fj.last.CacheHit,
		}
		if job.Created.IsZero() {
			job.Created = fj.last.Time
		}
		if fj.spec.QC != nil {
			job.QC = *fj.spec.QC
		}
		refRel, readsRel := fj.spec.RefPayload, fj.spec.ReadsPayload
		if refRel == "" || readsRel == "" {
			refRel, readsRel = payloadNames(id)
		}
		switch fj.last.Type {
		case recDone:
			rel := fj.last.Results
			if rel == "" {
				rel = resultsName(id)
			}
			// The results stay on disk and are served from there; loading
			// them here would make replay memory O(sum of all job results).
			if fi, err := os.Stat(s.journal.abs(rel)); err != nil {
				// The record promised results the disk no longer has: fail
				// the job visibly rather than serving an empty download.
				s.setJobStateLocked(job, StateFailed)
				job.Error = fmt.Sprintf("journaled results lost: %v", err)
			} else {
				s.setJobStateLocked(job, StateDone)
				job.resultsPath = s.journal.abs(rel)
				job.resultsSize = fi.Size()
				job.Done = job.Reads
			}
			job.Error = firstNonEmpty(fj.last.Error, job.Error)
			job.FallbackUsed = fj.last.Fallback
			job.FallbackReason = fj.last.FallbackReason
			job.ParseTime = time.Duration(fj.last.ParseMs * float64(time.Millisecond))
			job.BuildTime = time.Duration(fj.last.BuildMs * float64(time.Millisecond))
			job.MapTime = time.Duration(fj.last.MapMs * float64(time.Millisecond))
			job.Finished = fj.last.Finished
		case recFailed, recCanceled:
			if fj.last.Type == recFailed {
				s.setJobStateLocked(job, StateFailed)
			} else {
				s.setJobStateLocked(job, StateCanceled)
			}
			job.Error = fj.last.Error
			job.Finished = fj.last.Finished
		case recUploading:
			// A partial upload survives the crash: restore the job with the
			// committed offsets the disk actually holds, so the client's next
			// GET /api/jobs/{id} tells it where to resume.
			up := &uploadState{lastActivity: time.Now()}
			up.refSize = fileSize(s.journal.abs(refRel))
			up.readsSize = fileSize(s.journal.abs(readsRel))
			job.upload = up
			s.setJobStateLocked(job, StateUploading)
		default: // accepted or running: re-queue against the saved payloads
			refErr := statErr(s.journal.abs(refRel))
			readsErr := statErr(s.journal.abs(readsRel))
			if err := firstErr(refErr, readsErr); err != nil {
				s.setJobStateLocked(job, StateFailed)
				job.Error = fmt.Sprintf("journaled payloads lost: %v", err)
				job.Finished = time.Now()
			} else {
				s.setJobStateLocked(job, StateQueued)
				job.Done = 0
				job.Mapped = 0
				relaunches = append(relaunches, relaunch{job: job, in: jobInput{
					refPath:   s.journal.abs(refRel),
					readsPath: s.journal.abs(readsRel),
				}})
			}
		}
		if job.Finished.IsZero() && job.State.terminal() {
			job.Finished = time.Now()
		}
		// Terminal jobs re-merge their journaled ingest accounting, so the
		// server-wide QC totals (stats + metrics) replay identically; the
		// report is clamped to the fixed reason enum first — the journal is
		// the one input an operator could have hand-edited.
		if rep := fj.last.QCReport; rep != nil && job.State.terminal() {
			sanitizeQCReport(rep)
			job.QCReport = rep
			s.qcTotals.Merge(*rep)
		}
		if job.IdemKey != "" {
			// Terminal jobs keep their reservation too: a post-restart retry
			// of a finished job must return it, not run it again.
			s.idemKeys[job.IdemKey] = id
		}
		s.jobs[id] = job
		compacted = append(compacted, snapshotRecord(job))
	}
	s.jobsReplayed = uint64(len(relaunches))
	s.mu.Unlock()

	if err := s.journal.compact(compacted); err != nil {
		return fmt.Errorf("server: compacting journal: %w", err)
	}
	for _, rl := range relaunches {
		s.log.Info("replaying journaled job", "job", rl.job.ID, "backend", rl.job.Backend)
		s.launch(rl.job, rl.in)
	}
	return nil
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fileSize returns a file's size, 0 when it does not exist yet.
func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// statErr reports whether a file is present and statable.
func statErr(path string) error {
	_, err := os.Stat(path)
	return err
}
