package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// doJSON issues a request with an optional body and decodes the JSON reply.
func doJSON(t *testing.T, method, url string, body []byte, headers map[string]string) (int, map[string]any, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	payload := map[string]any{}
	if len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &payload); err != nil {
			t.Fatalf("%s %s: non-JSON reply (%d): %s", method, url, resp.StatusCode, raw)
		}
	}
	return resp.StatusCode, payload, resp.Header
}

// putChunk uploads one chunk and returns the status and reply.
func putChunk(t *testing.T, ts *httptest.Server, id int, part string, offset int64, data []byte) (int, map[string]any) {
	t.Helper()
	url := fmt.Sprintf("%s/api/jobs/%d/%s", ts.URL, id, part)
	if offset >= 0 {
		url += fmt.Sprintf("?offset=%d", offset)
	}
	code, payload, _ := doJSON(t, http.MethodPut, url, data, nil)
	return code, payload
}

// chunkedSubmit drives the full streaming protocol: create, upload both parts
// in pieces, finalize. Returns the job id.
func chunkedSubmit(t *testing.T, ts *httptest.Server, refFasta, readsFastq []byte, chunk int) int {
	t.Helper()
	code, created, _ := doJSON(t, http.MethodPost, ts.URL+"/api/jobs",
		[]byte(`{"backend":"cpu"}`), map[string]string{"Content-Type": "application/json"})
	if code != http.StatusCreated {
		t.Fatalf("create returned %d: %v", code, created)
	}
	id := int(created["id"].(float64))
	for part, data := range map[string][]byte{"reference": refFasta, "reads": readsFastq} {
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if code, payload := putChunk(t, ts, id, part, int64(off), data[off:end]); code != http.StatusOK {
				t.Fatalf("chunk %s@%d returned %d: %v", part, off, code, payload)
			}
		}
	}
	code, payload, _ := doJSON(t, http.MethodPost, fmt.Sprintf("%s/api/jobs/%d/finalize", ts.URL, id), nil, nil)
	if code != http.StatusAccepted {
		t.Fatalf("finalize returned %d: %v", code, payload)
	}
	return id
}

// The streaming protocol end to end: a job fed chunk by chunk produces the
// same TSV, byte for byte, as the buffered multipart path.
func TestChunkedUploadMatchesBuffered(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	waitForState(t, ts, 1, StateDone)
	golden := fetchResults(t, ts, 1)

	id := chunkedSubmit(t, ts, refFasta, readsFastq, 777)
	waitForState(t, ts, id, StateDone)
	if got := fetchResults(t, ts, id); !bytes.Equal(got, golden) {
		t.Error("chunked job results differ from the buffered run")
	}
	if st := getStats(t, ts); st.QueueDepth != 0 {
		t.Errorf("queue depth %d after completion, want 0", st.QueueDepth)
	}
}

// Resume semantics: the committed offset is the resync anchor. Omitted
// offsets append, duplicates ACK idempotently, gaps and straddles are 409
// with the committed offset the client should retry from.
func TestChunkedUploadResume(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, created, _ := doJSON(t, http.MethodPost, ts.URL+"/api/jobs",
		[]byte(`{"backend":"cpu","b":15,"sf":50}`), map[string]string{"Content-Type": "application/json"})
	if code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	id := int(created["id"].(float64))
	if created["reference_offset"].(float64) != 0 || created["reads_offset"].(float64) != 0 {
		t.Fatalf("fresh job offsets not zero: %v", created)
	}

	if code, payload := putChunk(t, ts, id, "reference", -1, []byte(">r\nACGT")); code != http.StatusOK || payload["offset"].(float64) != 7 {
		t.Fatalf("append without offset: %d %v", code, payload)
	}
	// Exact duplicate (lost ACK): idempotent 200 carrying the committed extent.
	if code, payload := putChunk(t, ts, id, "reference", 0, []byte(">r\nACG")); code != http.StatusOK || payload["offset"].(float64) != 7 {
		t.Fatalf("duplicate retransmit: %d %v", code, payload)
	}
	// Gap: past the committed extent.
	if code, payload := putChunk(t, ts, id, "reference", 99, []byte("x")); code != http.StatusConflict ||
		payload["reason"] != reasonBadOffset || payload["committed_offset"].(float64) != 7 {
		t.Fatalf("gap offset: %d %v", code, payload)
	}
	// Straddle: starts inside the committed extent but runs past it.
	if code, payload := putChunk(t, ts, id, "reference", 4, []byte("ACGTTTTT")); code != http.StatusConflict || payload["reason"] != reasonBadOffset {
		t.Fatalf("straddling chunk: %d %v", code, payload)
	}
	// The job JSON exposes the resume anchors while uploading.
	j := getJobJSON(t, ts, id)
	if j.State != string(StateUploading) || j.ReferenceOffset == nil || *j.ReferenceOffset != 7 {
		t.Fatalf("uploading job JSON lacks offsets: %+v", j)
	}

	// Finalize before reads arrived: structured 400 with both offsets.
	code, payload, _ := doJSON(t, http.MethodPost, fmt.Sprintf("%s/api/jobs/%d/finalize", ts.URL, id), nil, nil)
	if code != http.StatusBadRequest || payload["reason"] != reasonEmptyPayload {
		t.Fatalf("premature finalize: %d %v", code, payload)
	}
}

func TestChunkedUploadValidation(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _, _ := doJSON(t, http.MethodPost, ts.URL+"/api/jobs",
		[]byte(`{"backend":"gpu"}`), map[string]string{"Content-Type": "application/json"}); code != http.StatusBadRequest {
		t.Errorf("bad backend accepted: %d", code)
	}
	if code, _, _ := doJSON(t, http.MethodPost, ts.URL+"/api/jobs",
		[]byte(`{"mismatches":99}`), map[string]string{"Content-Type": "application/json"}); code != http.StatusBadRequest {
		t.Errorf("excessive mismatch budget accepted: %d", code)
	}
	if code, _ := putChunk(t, ts, 999, "reads", -1, []byte("x")); code != http.StatusNotFound {
		t.Errorf("chunk to missing job returned %d", code)
	}

	// A buffered job never accepts chunks or finalize.
	job := s.createJob("cpu", 15, 50, 0, "x", 100, 10)
	if code, payload := putChunk(t, ts, job.ID, "reads", -1, []byte("x")); code != http.StatusConflict || payload["reason"] != reasonWrongState {
		t.Errorf("chunk to queued job: %d %v", code, payload)
	}
	code, payload, _ := doJSON(t, http.MethodPost, fmt.Sprintf("%s/api/jobs/%d/finalize", ts.URL, job.ID), nil, nil)
	if code != http.StatusConflict || payload["reason"] != reasonWrongState {
		t.Errorf("finalize of buffered job: %d %v", code, payload)
	}
}

// Finalize is idempotent: repeating it after the job queued (or finished)
// reports the job's current state instead of erroring, and late chunks are
// refused with the job's state.
func TestFinalizeIdempotent(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id := chunkedSubmit(t, ts, refFasta, readsFastq, 1<<20)
	waitForState(t, ts, id, StateDone)

	code, payload, _ := doJSON(t, http.MethodPost, fmt.Sprintf("%s/api/jobs/%d/finalize", ts.URL, id), nil, nil)
	if code != http.StatusOK || payload["state"] != string(StateDone) {
		t.Errorf("repeated finalize: %d %v", code, payload)
	}
	if code, payload := putChunk(t, ts, id, "reads", -1, []byte("late")); code != http.StatusConflict || payload["reason"] != reasonWrongState {
		t.Errorf("late chunk: %d %v", code, payload)
	}
}

// An oversized upload is shed with the structured admission envelope and the
// job fails immediately, freeing its queue slot.
func TestUploadTooLargeShedsJob(t *testing.T) {
	s := NewWithConfig(Config{MaxUploadBytes: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, created, _ := doJSON(t, http.MethodPost, ts.URL+"/api/jobs",
		[]byte(`{"backend":"cpu"}`), map[string]string{"Content-Type": "application/json"})
	if code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	id := int(created["id"].(float64))

	code, payload := putChunk(t, ts, id, "reference", -1, bytes.Repeat([]byte("A"), 128))
	if code != http.StatusRequestEntityTooLarge || payload["reason"] != reasonTooLarge {
		t.Fatalf("oversized chunk: %d %v", code, payload)
	}
	if payload["retry_after_seconds"] == nil {
		t.Error("oversized rejection missing retry_after_seconds")
	}
	if j := getJobJSON(t, ts, id); j.State != string(StateFailed) {
		t.Errorf("oversized job state %q, want failed", j.State)
	}
	if st := getStats(t, ts); st.QueueDepth != 0 {
		t.Errorf("queue depth %d after shed, want 0", st.QueueDepth)
	}
}

// A retransmit of already-committed bytes must be ACKed idempotently even
// when the upload sits at the size cap: the cap charges only bytes that
// extend the committed extent. Regression test — the cap used to be applied
// before the duplicate check, so a lost-ACK retry at the cap failed the whole
// job as too_large.
func TestRetransmitAtCapIsIdempotent(t *testing.T) {
	chunk := bytes.Repeat([]byte("A"), 64)
	s := NewWithConfig(Config{MaxUploadBytes: int64(len(chunk))})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, created, _ := doJSON(t, http.MethodPost, ts.URL+"/api/jobs",
		[]byte(`{"backend":"cpu"}`), map[string]string{"Content-Type": "application/json"})
	if code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	id := int(created["id"].(float64))

	if code, payload := putChunk(t, ts, id, "reference", 0, chunk); code != http.StatusOK {
		t.Fatalf("chunk to the cap: %d %v", code, payload)
	}
	// The ACK was "lost"; the client re-sends the same chunk at offset 0.
	code, payload := putChunk(t, ts, id, "reference", 0, chunk)
	if code != http.StatusOK || int64(payload["offset"].(float64)) != int64(len(chunk)) {
		t.Fatalf("retransmit at the cap: %d %v, want idempotent ACK", code, payload)
	}
	if j := getJobJSON(t, ts, id); j.State != string(StateUploading) {
		t.Errorf("job state %q after retransmit, want uploading", j.State)
	}
	// A chunk that genuinely extends past the cap still sheds the job.
	if code, payload := putChunk(t, ts, id, "reference", int64(len(chunk)), []byte("B")); code != http.StatusRequestEntityTooLarge || payload["reason"] != reasonTooLarge {
		t.Errorf("extending past the cap: %d %v", code, payload)
	}
}

// The janitor frees slots held by clients that walked away mid-upload.
func TestStalledUploadSwept(t *testing.T) {
	s := NewWithConfig(Config{UploadTimeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, created, _ := doJSON(t, http.MethodPost, ts.URL+"/api/jobs",
		[]byte(`{"backend":"cpu"}`), map[string]string{"Content-Type": "application/json"})
	if code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	id := int(created["id"].(float64))

	if n := s.sweepStalledUploads(time.Now()); n != 0 {
		t.Fatalf("fresh upload swept: %d", n)
	}
	if n := s.sweepStalledUploads(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("stalled sweep failed %d uploads, want 1", n)
	}
	if j := getJobJSON(t, ts, id); j.State != string(StateFailed) || !strings.Contains(j.Error, "stalled") {
		t.Errorf("swept job %q (%q), want failed/stalled", j.State, j.Error)
	}
	if st := getStats(t, ts); st.QueueDepth != 0 {
		t.Errorf("queue depth %d after sweep, want 0", st.QueueDepth)
	}
}

// An Idempotency-Key makes submission retries safe: the retry gets the
// original job back (marked as a replay) instead of running it twice, on both
// the buffered and the chunked path.
func TestIdempotentSubmission(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(key string) (int, jobJSON, http.Header) {
		body, ctype := buildUpload(t, map[string]string{"backend": "cpu"},
			map[string][]byte{"reference": refFasta, "reads": readsFastq})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ctype)
		req.Header.Set("Accept", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var j jobJSON
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, j, resp.Header
	}

	code, first, hdr := post("retry-me")
	if code != http.StatusOK || hdr.Get("Idempotency-Replayed") != "" {
		t.Fatalf("first submit: %d replayed=%q", code, hdr.Get("Idempotency-Replayed"))
	}
	code, second, hdr := post("retry-me")
	if code != http.StatusOK || second.ID != first.ID || hdr.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("retry got job %d (code %d, replayed %q), want replay of %d",
			second.ID, code, hdr.Get("Idempotency-Replayed"), first.ID)
	}
	// The key survives the job finishing: a late retry still replays.
	s.Wait()
	if code, late, _ := post("retry-me"); code != http.StatusOK || late.ID != first.ID || late.State != string(StateDone) {
		t.Fatalf("late retry: %d %+v", code, late)
	}
	// A different key is a different job.
	if _, other, _ := post("another"); other.ID == first.ID {
		t.Error("distinct key replayed the old job")
	}

	// Chunked create replays too, committed offsets included.
	hdrs := map[string]string{"Content-Type": "application/json", "Idempotency-Key": "chunky"}
	code, created, _ := doJSON(t, http.MethodPost, ts.URL+"/api/jobs", []byte(`{"backend":"cpu"}`), hdrs)
	if code != http.StatusCreated {
		t.Fatalf("chunked create: %d", code)
	}
	id := int(created["id"].(float64))
	putChunk(t, ts, id, "reference", -1, []byte(">r\nACGT\n"))
	code, replay, rh := doJSON(t, http.MethodPost, ts.URL+"/api/jobs", []byte(`{"backend":"cpu"}`), hdrs)
	if code != http.StatusOK || int(replay["id"].(float64)) != id || rh.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("chunked replay: %d %v", code, replay)
	}
	if replay["reference_offset"].(float64) != 8 {
		t.Errorf("replayed create lost the committed offset: %v", replay)
	}
}

// The limiter answer must be accurate at low refill rates — a client told
// retry_after_seconds=1 against a 0.1/s bucket would hammer the server ten
// times per admitted token.
func TestRateLimitRetryAfterAccuracy(t *testing.T) {
	rl := newRateLimiter(0.1, 1)
	now := time.Now()
	if ok, _ := rl.allow("c", now); !ok {
		t.Fatal("burst token refused")
	}
	ok, retry := rl.allow("c", now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry < 9*time.Second || retry > 11*time.Second {
		t.Fatalf("retryAfter = %v, want ~10s at 0.1 tokens/s", retry)
	}
	rec := httptest.NewRecorder()
	writeAdmissionError(rec, &admissionError{
		status: http.StatusTooManyRequests, reason: reasonRateLimited,
		msg: "client rate limit exceeded", retryAfter: retry,
	})
	var payload struct {
		Retry int `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Retry != 10 || rec.Header().Get("Retry-After") != "10" {
		t.Errorf("envelope retry %d header %q, want 10", payload.Retry, rec.Header().Get("Retry-After"))
	}
	// Half-refilled: ~5s remain.
	if _, retry := rl.allow("c", now.Add(5*time.Second)); retry < 4*time.Second || retry > 6*time.Second {
		t.Errorf("half-refilled retryAfter = %v, want ~5s", retry)
	}
}

// The prune path: once the bucket map crosses pruneAbove, fully-refilled idle
// buckets are dropped, while an active client's half-empty bucket survives.
func TestRateLimiterPrunesIdleBuckets(t *testing.T) {
	rl := newRateLimiter(1, 2)
	base := time.Now()
	for i := 0; i < pruneAbove; i++ {
		rl.allow(fmt.Sprintf("idle-%d", i), base)
	}
	// Active client drains its bucket just before the prune trigger: not yet
	// refilled at base+1s, so it must be kept.
	rl.allow("active", base.Add(time.Second))
	rl.allow("active", base.Add(time.Second))

	rl.mu.Lock()
	grown := len(rl.buckets)
	rl.mu.Unlock()
	if grown <= pruneAbove {
		t.Fatalf("bucket map holds %d entries, expected growth past %d", grown, pruneAbove)
	}

	// 2s after base the idle buckets have refilled (1 token/s toward burst 2,
	// one taken) and a newcomer trips the prune; the active bucket is only 1s
	// idle and still short two tokens, so it stays.
	if ok, _ := rl.allow("newcomer", base.Add(2*time.Second)); !ok {
		t.Fatal("newcomer refused")
	}
	rl.mu.Lock()
	kept := len(rl.buckets)
	_, activeKept := rl.buckets["active"]
	rl.mu.Unlock()
	if kept > 2 {
		t.Errorf("prune left %d buckets, want <= 2 (active + newcomer)", kept)
	}
	if !activeKept {
		t.Error("prune dropped the still-draining active bucket")
	}
}

// X-Forwarded-For is only believed when the direct peer is a configured
// trusted proxy, and then only the rightmost untrusted hop counts.
func TestClientKeyTrustedProxies(t *testing.T) {
	if _, err := parseTrustedProxies("not-an-ip"); err == nil {
		t.Error("garbage proxy spec accepted")
	}
	nets, err := parseTrustedProxies("10.0.0.0/8, 192.168.1.1")
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.trustedProxies = nets

	req := func(remote, xff string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/jobs", nil)
		r.RemoteAddr = remote
		if xff != "" {
			r.Header.Set("X-Forwarded-For", xff)
		}
		return r
	}
	cases := []struct {
		remote, xff, want string
	}{
		// Peer is our proxy: rightmost untrusted hop is the client.
		{"10.1.2.3:9999", "1.2.3.4", "1.2.3.4"},
		{"10.1.2.3:9999", "6.6.6.6, 1.2.3.4, 192.168.1.1", "1.2.3.4"},
		// Whole chain is our proxies, or empty: fall back to the peer.
		{"10.1.2.3:9999", "10.9.9.9", "10.1.2.3"},
		{"10.1.2.3:9999", "", "10.1.2.3"},
		// Garbage in the chain must not mint arbitrary keys.
		{"10.1.2.3:9999", "6.6.6.6, zzz", "10.1.2.3"},
		// Untrusted peer: the header is attacker-controlled, ignore it.
		{"9.9.9.9:1234", "1.2.3.4", "9.9.9.9"},
	}
	for _, c := range cases {
		if got := s.clientKey(req(c.remote, c.xff)); got != c.want {
			t.Errorf("clientKey(%s, XFF=%q) = %q, want %q", c.remote, c.xff, got, c.want)
		}
	}

	// Default config: header never trusted.
	s2 := New()
	if got := s2.clientKey(req("10.1.2.3:9999", "1.2.3.4")); got != "10.1.2.3" {
		t.Errorf("default clientKey trusted the header: %q", got)
	}
}

// Serving-path content negotiation: endpoints shared by the HTML forms and
// the API answer errors in the shape the client asked for, and TSV downloads
// carry an exact Content-Length.
func TestErrorNegotiationAndContentLength(t *testing.T) {
	refFasta, readsFastq := testDataSmall(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	job := s.createJob("cpu", 15, 50, 0, "x", 100, 10)

	get := func(url, accept string) (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}

	url := fmt.Sprintf("%s/jobs/%d/results", ts.URL, job.ID)
	resp, body := get(url, "application/json")
	if resp.StatusCode != http.StatusConflict || !strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
		t.Errorf("JSON client got %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == "" {
		t.Errorf("JSON error envelope malformed: %s", body)
	}
	if resp, _ := get(url, ""); strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
		t.Errorf("plain client got JSON error: %q", resp.Header.Get("Content-Type"))
	}

	// Validation failure on POST /jobs negotiates the same way.
	body2, ctype := buildUpload(t, map[string]string{"b": "99"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs", body2)
	req.Header.Set("Content-Type", ctype)
	req.Header.Set("Accept", "application/json")
	pr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	praw, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusBadRequest || !strings.Contains(pr.Header.Get("Content-Type"), "application/json") {
		t.Errorf("validation error for JSON client: %d %q %s", pr.StatusCode, pr.Header.Get("Content-Type"), praw)
	}

	// A finished job's TSV announces its exact size.
	submitJob(t, s, ts, map[string]string{"backend": "cpu"},
		map[string][]byte{"reference": refFasta, "reads": readsFastq})
	s.Wait()
	rr, tsv := get(fmt.Sprintf("%s/jobs/%d/results", ts.URL, job.ID+1), "")
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("results returned %d", rr.StatusCode)
	}
	if cl := rr.Header.Get("Content-Length"); cl != fmt.Sprint(len(tsv)) {
		t.Errorf("Content-Length %q, body %d bytes", cl, len(tsv))
	}
}
