package align

import (
	"fmt"

	"bwaver/internal/dna"
)

// DefaultZDrop is the default early-termination threshold: extension rows
// stop once the running row maximum has fallen this far below the best score
// seen. With +2/-3/-5 scoring a 100-point deficit needs 50 consecutive
// matching rows to recover, which real short-read alignments never do.
const DefaultZDrop = 100

// Extender is a reusable seed-extension engine: the same banded DP as
// ExtendSeed plus two work-cutting heuristics (z-drop early termination and
// adaptive band growth), computed in caller-owned scratch so steady-state
// extension allocates nothing. An Extender is not safe for concurrent use;
// batch workers each own one.
//
// Result.Ops returned by the methods alias the Extender's op slab: they stay
// valid across subsequent calls (the slab grows, it is not recycled) until
// Reset truncates it, which callers do once per read after consuming the
// results.
type Extender struct {
	// ZDrop is the early-termination threshold: 0 selects DefaultZDrop, a
	// negative value disables z-drop (every band row is evaluated).
	ZDrop int
	// BandStart, when positive and smaller than the caller's band, starts
	// the DP at this half-width and doubles it — re-running the extension —
	// whenever the banded optimum looks band-limited (it touches the band
	// edge or no positive cell was found). A zero BandStart disables
	// adaptive growth and runs the full band immediately.
	BandStart int

	h   []int32
	ops []Op
}

// Reset truncates the op slab. Call once per read, after the read's results
// have been consumed (rendered to CIGAR or discarded).
func (e *Extender) Reset() { e.ops = e.ops[:0] }

func (e *Extender) zdrop() int {
	switch {
	case e.ZDrop < 0:
		return 0
	case e.ZDrop == 0:
		return DefaultZDrop
	}
	return e.ZDrop
}

// grid returns the scratch DP array resized to n cells and zeroed.
func (e *Extender) grid(n int) []int32 {
	if cap(e.h) < n {
		e.h = make([]int32, n)
	} else {
		e.h = e.h[:n]
		clear(e.h)
	}
	return e.h
}

// ExtendSeed is ExtendSeed computed in the Extender's scratch with its
// heuristics applied. The reference window is derived from the full band, so
// the escalation endpoint — an adaptive run that grew all the way to band —
// is cell-for-cell the computation the free function performs. Result.Cells
// accumulates every evaluated cell across adaptive re-runs, which is the
// work a device kernel would also re-issue.
func (e *Extender) ExtendSeed(query, ref dna.Seq, qPos, rPos, seedLen, band int, sc Scoring) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	if seedLen <= 0 {
		return Result{}, fmt.Errorf("align: seedLen %d must be positive", seedLen)
	}
	if band < 0 {
		return Result{}, fmt.Errorf("align: band %d must be non-negative", band)
	}
	if len(query) == 0 || len(ref) == 0 {
		return Result{}, fmt.Errorf("align: query (%d bases) and reference (%d bases) must be non-empty", len(query), len(ref))
	}
	if qPos < 0 || qPos+seedLen > len(query) {
		return Result{}, fmt.Errorf("align: seed [%d,%d) outside query of length %d", qPos, qPos+seedLen, len(query))
	}
	if rPos < 0 || rPos+seedLen > len(ref) {
		return Result{}, fmt.Errorf("align: seed [%d,%d) outside reference of length %d", rPos, rPos+seedLen, len(ref))
	}
	wStart := max(0, rPos-qPos-band)
	wEnd := min(len(ref), rPos+(len(query)-qPos)+band)
	win := ref[wStart:wEnd]
	delta := (rPos - wStart) - qPos

	b := band
	if e.BandStart > 0 && e.BandStart < band {
		b = e.BandStart
	}
	cells := 0
	for {
		res, edge := e.bandedSW(query, win, delta, b, sc)
		cells += res.Cells
		// A run at the full band is authoritative. A narrower run is
		// accepted only when its optimum is clearly not band-limited:
		// something aligned, and neither the best cell nor its traceback
		// touched the outermost diagonals.
		if b >= band || (res.Score > 0 && !edge) {
			res.Cells = cells
			res.RefStart += wStart
			res.RefEnd += wStart
			return res, nil
		}
		b *= 2
		if b > band {
			b = band
		}
	}
}

// bandedSW fills the diagonal band |j - i - delta| <= band in the scratch
// grid (see the package function bandedSW for the recurrence and layout).
// It additionally applies z-drop — rows stop once the row maximum falls
// ZDrop below the best score after the best row — and reports whether the
// returned optimum touched the outermost band diagonals, the signal the
// adaptive caller keys escalation on.
func (e *Extender) bandedSW(query, ref dna.Seq, delta, band int, sc Scoring) (Result, bool) {
	m, n := len(query), len(ref)
	if m == 0 || n == 0 {
		return Result{}, false
	}
	w := 2*band + 1
	H := e.grid((m + 1) * w)
	zd := int32(0)
	if z := e.zdrop(); z > 0 {
		zd = int32(z)
	}
	cells := 0
	best := int32(0)
	bi, bk, bestRow := 0, 0, 0
	for i := 1; i <= m; i++ {
		jLo := max(1, i+delta-band)
		jHi := min(n, i+delta+band)
		rowMax := int32(0)
		for j := jLo; j <= jHi; j++ {
			k := j - i - delta + band
			cells++
			sub := int32(sc.Mismatch)
			if query[i-1] == ref[j-1] {
				sub = int32(sc.Match)
			}
			v := H[(i-1)*w+k] + sub
			if k+1 < w {
				if up := H[(i-1)*w+k+1] + int32(sc.Gap); up > v {
					v = up
				}
			}
			if k-1 >= 0 {
				if left := H[i*w+k-1] + int32(sc.Gap); left > v {
					v = left
				}
			}
			if v < 0 {
				v = 0
			}
			H[i*w+k] = v
			if v > rowMax {
				rowMax = v
			}
			if v > best {
				best, bi, bk, bestRow = v, i, k, i
			}
		}
		// Z-drop: once past the best row, a row whose maximum has sunk more
		// than ZDrop below the best cannot plausibly recover; stop charging
		// cells for it.
		if zd > 0 && i > bestRow && rowMax+zd < best {
			break
		}
	}
	if best == 0 {
		return Result{Cells: cells}, false
	}
	// Traceback from the best cell, mirroring the forward preference order
	// (diagonal, up, left). Ops append to the slab and are reversed in
	// place; edge reports any visit to the outermost diagonals.
	edge := bk == 0 || bk == w-1
	opsStart := len(e.ops)
	i, k := bi, bk
	for i > 0 {
		j := i + delta + k - band
		if j <= 0 || H[i*w+k] <= 0 {
			break
		}
		if k == 0 || k == w-1 {
			edge = true
		}
		sub := int32(sc.Mismatch)
		if query[i-1] == ref[j-1] {
			sub = int32(sc.Match)
		}
		switch {
		case H[i*w+k] == H[(i-1)*w+k]+sub:
			e.ops = append(e.ops, OpMatch)
			i--
		case k+1 < w && H[i*w+k] == H[(i-1)*w+k+1]+int32(sc.Gap):
			e.ops = append(e.ops, OpInsert)
			i--
			k++
		default:
			e.ops = append(e.ops, OpDelete)
			k--
		}
	}
	sub := e.ops[opsStart:len(e.ops):len(e.ops)]
	reverseOps(sub)
	return Result{
		Score:      int(best),
		QueryStart: i, QueryEnd: bi,
		RefStart: i + delta + k - band, RefEnd: bi + delta + bk - band,
		Ops:   sub,
		Cells: cells,
	}, edge
}

// SmithWaterman is the package function computed in the Extender's scratch:
// full local DP, no band, no heuristics (the rescue path wants the exact
// optimum over the insert window). Allocation-free in steady state.
func (e *Extender) SmithWaterman(query, ref dna.Seq, sc Scoring) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	m, n := len(query), len(ref)
	if m == 0 || n == 0 {
		return Result{}, nil
	}
	w := n + 1
	H := e.grid((m + 1) * w)
	best := int32(0)
	bi, bj := 0, 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			diag := H[(i-1)*w+j-1]
			if query[i-1] == ref[j-1] {
				diag += int32(sc.Match)
			} else {
				diag += int32(sc.Mismatch)
			}
			v := diag
			if up := H[(i-1)*w+j] + int32(sc.Gap); up > v {
				v = up
			}
			if left := H[i*w+j-1] + int32(sc.Gap); left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			H[i*w+j] = v
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best == 0 {
		return Result{Cells: m * n}, nil
	}
	opsStart := len(e.ops)
	i, j := bi, bj
	for i > 0 && j > 0 && H[i*w+j] > 0 {
		diag := H[(i-1)*w+j-1]
		sub := int32(sc.Mismatch)
		if query[i-1] == ref[j-1] {
			sub = int32(sc.Match)
		}
		switch {
		case H[i*w+j] == diag+sub:
			e.ops = append(e.ops, OpMatch)
			i--
			j--
		case H[i*w+j] == H[(i-1)*w+j]+int32(sc.Gap):
			e.ops = append(e.ops, OpInsert)
			i--
		default:
			e.ops = append(e.ops, OpDelete)
			j--
		}
	}
	sub := e.ops[opsStart:len(e.ops):len(e.ops)]
	reverseOps(sub)
	return Result{
		Score:      int(best),
		QueryStart: i, QueryEnd: bi,
		RefStart: j, RefEnd: bj,
		Ops:   sub,
		Cells: m * n,
	}, nil
}
