package align

import (
	"math/rand"
	"testing"

	"bwaver/internal/dna"
)

// BenchmarkCIGARLongTraceback pins the CIGAR rendering cost for long
// tracebacks: the strings.Builder rewrite allocates a constant handful of
// times per call instead of once per run-length segment (the previous
// `out += fmt.Sprintf` version re-copied the whole string each segment,
// quadratic in traceback length).
func BenchmarkCIGARLongTraceback(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ops := make([]Op, 10000)
	kinds := []Op{OpMatch, OpInsert, OpDelete}
	for i := range ops {
		// Short runs so the encoder emits many segments.
		ops[i] = kinds[rng.Intn(3)]
	}
	res := Result{Ops: ops}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.CIGAR() == "*" {
			b.Fatal("unexpected empty CIGAR")
		}
	}
}

func BenchmarkExtendSeedBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ref := make(dna.Seq, 100000)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	query := ref[40000:40150].Clone()
	for m := 0; m < 4; m++ {
		query[rng.Intn(len(query))] = dna.Base(rng.Intn(4))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtendSeed(query, ref, 60, 40060, 20, 12, DefaultScoring); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtenderExtendSeed pins the reusable Extender's steady state:
// after a warm call its grid and ops buffers are sized, so every subsequent
// extension — z-drop and adaptive band included — is allocation-free. The
// mem batch engine's zero-alloc gate rests on this.
func BenchmarkExtenderExtendSeed(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ref := make(dna.Seq, 100000)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	query := ref[40000:40150].Clone()
	for m := 0; m < 4; m++ {
		query[rng.Intn(len(query))] = dna.Base(rng.Intn(4))
	}
	var e Extender
	if _, err := e.ExtendSeed(query, ref, 60, 40060, 20, 12, DefaultScoring); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExtendSeed(query, ref, 60, 40060, 20, 12, DefaultScoring); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtenderSmithWaterman pins the pooled full-matrix fallback the
// mate-rescue path uses: steady state must not allocate either.
func BenchmarkExtenderSmithWaterman(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	ref := make(dna.Seq, 600)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	query := ref[200:300].Clone()
	for m := 0; m < 3; m++ {
		query[rng.Intn(len(query))] = dna.Base(rng.Intn(4))
	}
	var e Extender
	if _, err := e.SmithWaterman(query, ref, DefaultScoring); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SmithWaterman(query, ref, DefaultScoring); err != nil {
			b.Fatal(err)
		}
	}
}
