package align

import (
	"math/rand"
	"testing"

	"bwaver/internal/dna"
)

func TestScoringValidate(t *testing.T) {
	bad := []Scoring{
		{Match: 0, Mismatch: -1, Gap: -1},
		{Match: -2, Mismatch: -1, Gap: -1},
		{Match: 2, Mismatch: 1, Gap: -1},
		{Match: 2, Mismatch: -1, Gap: 0},
	}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("accepted invalid scoring %+v", s)
		}
	}
	if DefaultScoring.Validate() != nil {
		t.Error("DefaultScoring invalid")
	}
}

func TestExactMatchAlignment(t *testing.T) {
	q := dna.MustParseSeq("ACGTACGT")
	r := dna.MustParseSeq("TTTACGTACGTTTT")
	res, err := SmithWaterman(q, r, DefaultScoring)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 8*DefaultScoring.Match {
		t.Errorf("score %d, want %d", res.Score, 8*DefaultScoring.Match)
	}
	if res.RefStart != 3 || res.RefEnd != 11 || res.QueryStart != 0 || res.QueryEnd != 8 {
		t.Errorf("coordinates wrong: %+v", res)
	}
	if res.CIGAR() != "8M" {
		t.Errorf("CIGAR %q, want 8M", res.CIGAR())
	}
	if id := res.Identity(q, r); id != 1.0 {
		t.Errorf("identity %v, want 1.0", id)
	}
}

func TestMismatchAlignment(t *testing.T) {
	q := dna.MustParseSeq("ACGTACGTAC")
	r := q.Clone()
	r[5] = r[5].Complement() // one substitution in the middle
	res, err := SmithWaterman(q, r, DefaultScoring)
	if err != nil {
		t.Fatal(err)
	}
	want := 9*DefaultScoring.Match + DefaultScoring.Mismatch
	if res.Score != want {
		t.Errorf("score %d, want %d", res.Score, want)
	}
	if res.CIGAR() != "10M" {
		t.Errorf("CIGAR %q, want 10M", res.CIGAR())
	}
	if id := res.Identity(q, r); id != 0.9 {
		t.Errorf("identity %v, want 0.9", id)
	}
}

func TestGapAlignment(t *testing.T) {
	// Reference has 3 extra bases in the middle: expect a deletion run.
	q := dna.MustParseSeq("AACCGGTTAACCGGTT")
	r := dna.MustParseSeq("AACCGGTTGGGAACCGGTT")
	res, err := SmithWaterman(q, r, Scoring{Match: 2, Mismatch: -5, Gap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CIGAR() != "8M3D8M" {
		t.Errorf("CIGAR %q, want 8M3D8M", res.CIGAR())
	}
}

func TestInsertionAlignment(t *testing.T) {
	q := dna.MustParseSeq("AACCGGTTAAAACCGGTT")
	r := dna.MustParseSeq("AACCGGTTAACCGGTT")
	res, err := SmithWaterman(q, r, Scoring{Match: 2, Mismatch: -5, Gap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CIGAR() != "9M2I7M" && res.CIGAR() != "8M2I8M" && res.CIGAR() != "10M2I6M" {
		t.Errorf("CIGAR %q, want an 'xM2IyM' shape", res.CIGAR())
	}
}

func TestNoAlignment(t *testing.T) {
	res, err := SmithWaterman(dna.MustParseSeq("AAAA"), dna.MustParseSeq("CCCC"),
		Scoring{Match: 1, Mismatch: -2, Gap: -2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 0 || res.CIGAR() != "*" {
		t.Errorf("expected empty alignment, got %+v", res)
	}
}

func TestEmptyInputs(t *testing.T) {
	res, err := SmithWaterman(nil, dna.MustParseSeq("ACGT"), DefaultScoring)
	if err != nil || res.Score != 0 {
		t.Errorf("empty query: %+v %v", res, err)
	}
	res, err = SmithWaterman(dna.MustParseSeq("ACGT"), nil, DefaultScoring)
	if err != nil || res.Score != 0 {
		t.Errorf("empty ref: %+v %v", res, err)
	}
}

func TestScoreNeverNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		q := make(dna.Seq, 1+rng.Intn(30))
		r := make(dna.Seq, 1+rng.Intn(60))
		for i := range q {
			q[i] = dna.Base(rng.Intn(4))
		}
		for i := range r {
			r[i] = dna.Base(rng.Intn(4))
		}
		res, err := SmithWaterman(q, r, DefaultScoring)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score < 0 {
			t.Fatalf("negative score %d", res.Score)
		}
		// Score must never exceed a perfect full-query match.
		if res.Score > len(q)*DefaultScoring.Match {
			t.Fatalf("score %d exceeds perfect match bound", res.Score)
		}
		// Traceback consistency: ops consume exactly the aligned spans.
		qLen, rLen := 0, 0
		for _, op := range res.Ops {
			switch op {
			case OpMatch:
				qLen++
				rLen++
			case OpInsert:
				qLen++
			case OpDelete:
				rLen++
			}
		}
		if qLen != res.QueryEnd-res.QueryStart || rLen != res.RefEnd-res.RefStart {
			t.Fatalf("traceback spans inconsistent: %+v", res)
		}
	}
}

func TestExtendSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := make(dna.Seq, 5000)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	// Query = a reference slice with one mutation outside the seed region.
	const refAt, qLen, seedOff, seedLen = 2000, 100, 40, 20
	query := ref[refAt : refAt+qLen].Clone()
	query[5] = query[5].Complement()
	res, err := ExtendSeed(query, ref, seedOff, refAt+seedOff, seedLen, 10, DefaultScoring)
	if err != nil {
		t.Fatal(err)
	}
	if res.RefStart != refAt || res.RefEnd != refAt+qLen {
		t.Errorf("extension window wrong: ref span [%d,%d), want [%d,%d)",
			res.RefStart, res.RefEnd, refAt, refAt+qLen)
	}
	wantScore := (qLen-1)*DefaultScoring.Match + DefaultScoring.Mismatch
	if res.Score != wantScore {
		t.Errorf("score %d, want %d", res.Score, wantScore)
	}
}

func TestExtendSeedValidation(t *testing.T) {
	q := dna.MustParseSeq("ACGTACGT")
	r := dna.MustParseSeq("ACGTACGTACGT")
	cases := []struct{ qPos, rPos, seedLen, band int }{
		{0, 0, 0, 5},
		{0, 0, 4, -1},
		{-1, 0, 4, 5},
		{6, 0, 4, 5},  // seed runs off the query
		{0, 10, 4, 5}, // seed runs off the reference
	}
	for _, c := range cases {
		if _, err := ExtendSeed(q, r, c.qPos, c.rPos, c.seedLen, c.band, DefaultScoring); err == nil {
			t.Errorf("ExtendSeed(%+v) accepted invalid input", c)
		}
	}
}
