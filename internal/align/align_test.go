package align

import (
	"math/rand"
	"testing"

	"bwaver/internal/dna"
)

func TestScoringValidate(t *testing.T) {
	bad := []Scoring{
		{Match: 0, Mismatch: -1, Gap: -1},
		{Match: -2, Mismatch: -1, Gap: -1},
		{Match: 2, Mismatch: 1, Gap: -1},
		{Match: 2, Mismatch: -1, Gap: 0},
	}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("accepted invalid scoring %+v", s)
		}
	}
	if DefaultScoring.Validate() != nil {
		t.Error("DefaultScoring invalid")
	}
}

func TestExactMatchAlignment(t *testing.T) {
	q := dna.MustParseSeq("ACGTACGT")
	r := dna.MustParseSeq("TTTACGTACGTTTT")
	res, err := SmithWaterman(q, r, DefaultScoring)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 8*DefaultScoring.Match {
		t.Errorf("score %d, want %d", res.Score, 8*DefaultScoring.Match)
	}
	if res.RefStart != 3 || res.RefEnd != 11 || res.QueryStart != 0 || res.QueryEnd != 8 {
		t.Errorf("coordinates wrong: %+v", res)
	}
	if res.CIGAR() != "8M" {
		t.Errorf("CIGAR %q, want 8M", res.CIGAR())
	}
	if id := res.Identity(q, r); id != 1.0 {
		t.Errorf("identity %v, want 1.0", id)
	}
}

func TestMismatchAlignment(t *testing.T) {
	q := dna.MustParseSeq("ACGTACGTAC")
	r := q.Clone()
	r[5] = r[5].Complement() // one substitution in the middle
	res, err := SmithWaterman(q, r, DefaultScoring)
	if err != nil {
		t.Fatal(err)
	}
	want := 9*DefaultScoring.Match + DefaultScoring.Mismatch
	if res.Score != want {
		t.Errorf("score %d, want %d", res.Score, want)
	}
	if res.CIGAR() != "10M" {
		t.Errorf("CIGAR %q, want 10M", res.CIGAR())
	}
	if id := res.Identity(q, r); id != 0.9 {
		t.Errorf("identity %v, want 0.9", id)
	}
}

func TestGapAlignment(t *testing.T) {
	// Reference has 3 extra bases in the middle: expect a deletion run.
	q := dna.MustParseSeq("AACCGGTTAACCGGTT")
	r := dna.MustParseSeq("AACCGGTTGGGAACCGGTT")
	res, err := SmithWaterman(q, r, Scoring{Match: 2, Mismatch: -5, Gap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CIGAR() != "8M3D8M" {
		t.Errorf("CIGAR %q, want 8M3D8M", res.CIGAR())
	}
}

func TestInsertionAlignment(t *testing.T) {
	q := dna.MustParseSeq("AACCGGTTAAAACCGGTT")
	r := dna.MustParseSeq("AACCGGTTAACCGGTT")
	res, err := SmithWaterman(q, r, Scoring{Match: 2, Mismatch: -5, Gap: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CIGAR() != "9M2I7M" && res.CIGAR() != "8M2I8M" && res.CIGAR() != "10M2I6M" {
		t.Errorf("CIGAR %q, want an 'xM2IyM' shape", res.CIGAR())
	}
}

func TestNoAlignment(t *testing.T) {
	res, err := SmithWaterman(dna.MustParseSeq("AAAA"), dna.MustParseSeq("CCCC"),
		Scoring{Match: 1, Mismatch: -2, Gap: -2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 0 || res.CIGAR() != "*" {
		t.Errorf("expected empty alignment, got %+v", res)
	}
}

func TestEmptyInputs(t *testing.T) {
	res, err := SmithWaterman(nil, dna.MustParseSeq("ACGT"), DefaultScoring)
	if err != nil || res.Score != 0 {
		t.Errorf("empty query: %+v %v", res, err)
	}
	res, err = SmithWaterman(dna.MustParseSeq("ACGT"), nil, DefaultScoring)
	if err != nil || res.Score != 0 {
		t.Errorf("empty ref: %+v %v", res, err)
	}
}

func TestScoreNeverNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		q := make(dna.Seq, 1+rng.Intn(30))
		r := make(dna.Seq, 1+rng.Intn(60))
		for i := range q {
			q[i] = dna.Base(rng.Intn(4))
		}
		for i := range r {
			r[i] = dna.Base(rng.Intn(4))
		}
		res, err := SmithWaterman(q, r, DefaultScoring)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score < 0 {
			t.Fatalf("negative score %d", res.Score)
		}
		// Score must never exceed a perfect full-query match.
		if res.Score > len(q)*DefaultScoring.Match {
			t.Fatalf("score %d exceeds perfect match bound", res.Score)
		}
		// Traceback consistency: ops consume exactly the aligned spans.
		qLen, rLen := 0, 0
		for _, op := range res.Ops {
			switch op {
			case OpMatch:
				qLen++
				rLen++
			case OpInsert:
				qLen++
			case OpDelete:
				rLen++
			}
		}
		if qLen != res.QueryEnd-res.QueryStart || rLen != res.RefEnd-res.RefStart {
			t.Fatalf("traceback spans inconsistent: %+v", res)
		}
	}
}

func TestExtendSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := make(dna.Seq, 5000)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	// Query = a reference slice with one mutation outside the seed region.
	const refAt, qLen, seedOff, seedLen = 2000, 100, 40, 20
	query := ref[refAt : refAt+qLen].Clone()
	query[5] = query[5].Complement()
	res, err := ExtendSeed(query, ref, seedOff, refAt+seedOff, seedLen, 10, DefaultScoring)
	if err != nil {
		t.Fatal(err)
	}
	if res.RefStart != refAt || res.RefEnd != refAt+qLen {
		t.Errorf("extension window wrong: ref span [%d,%d), want [%d,%d)",
			res.RefStart, res.RefEnd, refAt, refAt+qLen)
	}
	wantScore := (qLen-1)*DefaultScoring.Match + DefaultScoring.Mismatch
	if res.Score != wantScore {
		t.Errorf("score %d, want %d", res.Score, wantScore)
	}
}

func TestExtendSeedValidation(t *testing.T) {
	q := dna.MustParseSeq("ACGTACGT")
	r := dna.MustParseSeq("ACGTACGTACGT")
	cases := []struct{ qPos, rPos, seedLen, band int }{
		{0, 0, 0, 5},
		{0, 0, 4, -1},
		{-1, 0, 4, 5},
		{6, 0, 4, 5},  // seed runs off the query
		{0, 10, 4, 5}, // seed runs off the reference
	}
	for _, c := range cases {
		if _, err := ExtendSeed(q, r, c.qPos, c.rPos, c.seedLen, c.band, DefaultScoring); err == nil {
			t.Errorf("ExtendSeed(%+v) accepted invalid input", c)
		}
	}
	// band == 0 is a valid degenerate band (substitutions only).
	res, err := ExtendSeed(q, r, 0, 0, 4, 0, DefaultScoring)
	if err != nil {
		t.Fatalf("band 0 rejected: %v", err)
	}
	if res.Score != 8*DefaultScoring.Match || res.CIGAR() != "8M" {
		t.Errorf("band-0 extension = %+v", res)
	}
	// Empty inputs are an error, not a silent zero result.
	if _, err := ExtendSeed(nil, r, 0, 0, 4, 2, DefaultScoring); err == nil {
		t.Error("accepted empty query")
	}
	if _, err := ExtendSeed(q, nil, 0, 0, 4, 2, DefaultScoring); err == nil {
		t.Error("accepted empty reference")
	}
}

// TestExtendSeedMatchesFullDP: when the band is wide enough to contain the
// optimal alignment, the banded extension must reproduce full Smith-Waterman
// on the same window while evaluating strictly fewer DP cells.
func TestExtendSeedMatchesFullDP(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ref := make(dna.Seq, 3000)
	for i := range ref {
		ref[i] = dna.Base(rng.Intn(4))
	}
	const band = 12
	for trial := 0; trial < 50; trial++ {
		n := 60 + rng.Intn(60)
		at := rng.Intn(len(ref) - n)
		query := ref[at : at+n].Clone()
		// A few substitutions plus at most one short indel, within the band.
		for m := 0; m < 3; m++ {
			p := rng.Intn(len(query))
			query[p] = dna.Base(rng.Intn(4))
		}
		if trial%2 == 0 {
			p := 5 + rng.Intn(len(query)-10)
			del := 1 + rng.Intn(3)
			query = append(query[:p:p], query[p+del:]...)
		}
		// Anchor on an exact seed: scan for a 16-mer of the query present at
		// the expected diagonal.
		seedLen := 16
		qPos := -1
		for s := 0; s+seedLen <= len(query); s++ {
			eq := true
			for i := 0; i < seedLen; i++ {
				if query[s+i] != ref[at+s+i] {
					eq = false
					break
				}
			}
			if eq {
				qPos = s
				break
			}
		}
		if qPos < 0 {
			continue
		}
		got, err := ExtendSeed(query, ref, qPos, at+qPos, seedLen, band, DefaultScoring)
		if err != nil {
			t.Fatal(err)
		}
		wStart := max(0, at+qPos-qPos-band)
		wEnd := min(len(ref), at+qPos+(len(query)-qPos)+band)
		want, err := SmithWaterman(query, ref[wStart:wEnd], DefaultScoring)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("trial %d: banded score %d, full %d", trial, got.Score, want.Score)
		}
		if got.QueryStart != want.QueryStart || got.QueryEnd != want.QueryEnd ||
			got.RefStart != want.RefStart+wStart || got.RefEnd != want.RefEnd+wStart {
			t.Fatalf("trial %d: banded coords %+v, full %+v (wStart %d)", trial, got, want, wStart)
		}
		if got.Cells >= want.Cells {
			t.Fatalf("trial %d: banded evaluated %d cells, full DP %d", trial, got.Cells, want.Cells)
		}
	}
}

// The banded DP must never pair bases further than band diagonals from the
// seed diagonal, whatever the inputs.
func TestExtendSeedStaysInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		ref := make(dna.Seq, 200)
		for i := range ref {
			ref[i] = dna.Base(rng.Intn(4))
		}
		query := make(dna.Seq, 40+rng.Intn(40))
		for i := range query {
			query[i] = dna.Base(rng.Intn(4))
		}
		seedLen := 8
		qPos := rng.Intn(len(query) - seedLen)
		rPos := qPos + rng.Intn(len(ref)-len(query))
		copy(query[qPos:qPos+seedLen], ref[rPos:rPos+seedLen])
		band := rng.Intn(6)
		res, err := ExtendSeed(query, ref, qPos, rPos, seedLen, band, DefaultScoring)
		if err != nil {
			t.Fatal(err)
		}
		qi, ri := res.QueryStart, res.RefStart
		for _, op := range res.Ops {
			if op == OpMatch {
				diag := ri - qi - (rPos - qPos)
				if diag < -band || diag > band {
					t.Fatalf("trial %d: pairing q%d:r%d is %d diagonals off a band of %d", trial, qi, ri, diag, band)
				}
			}
			switch op {
			case OpMatch:
				qi++
				ri++
			case OpInsert:
				qi++
			case OpDelete:
				ri++
			}
		}
	}
}
