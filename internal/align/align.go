// Package align implements Smith-Waterman local alignment and banded seed
// extension.
//
// The paper motivates short-fragment mapping as the seeding stage of
// seed-and-extend aligners (§I: "the mapping of short DNA fragments is used
// to determine candidate loci in the genome (seeds) to be extended by the
// actual alignment algorithm"); its related work (Arram et al.) pairs an
// FM-index seeder with Smith-Waterman. This package supplies that extension
// stage so examples/seedextend can demonstrate the full pipeline with
// BWaveR as the seeder.
package align

import (
	"fmt"
	"strconv"
	"strings"

	"bwaver/internal/dna"
)

// Scoring holds the affine-free (linear-gap) alignment parameters.
type Scoring struct {
	Match    int // score for a base match (> 0)
	Mismatch int // penalty for a mismatch (< 0)
	Gap      int // penalty per gap base (< 0)
}

// DefaultScoring matches common short-read settings (+2/-3/-5).
var DefaultScoring = Scoring{Match: 2, Mismatch: -3, Gap: -5}

// Validate checks the scoring scheme's sign conventions.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("align: match score %d must be positive", s.Match)
	}
	if s.Mismatch >= 0 || s.Gap >= 0 {
		return fmt.Errorf("align: mismatch (%d) and gap (%d) penalties must be negative", s.Mismatch, s.Gap)
	}
	return nil
}

// Op is an alignment operation in a traceback.
type Op byte

// Alignment operations, CIGAR-style.
const (
	OpMatch  Op = 'M' // match or mismatch (consumes both)
	OpInsert Op = 'I' // insertion to the query (consumes query)
	OpDelete Op = 'D' // deletion from the query (consumes reference)
)

// Result is a local alignment.
type Result struct {
	Score int
	// QueryStart/QueryEnd and RefStart/RefEnd delimit the aligned regions,
	// half-open.
	QueryStart, QueryEnd int
	RefStart, RefEnd     int
	// Ops is the traceback, query/reference left to right.
	Ops []Op
	// Cells is the number of dynamic-programming cells the alignment
	// evaluated — the work measure a systolic-array implementation of the
	// extension kernel would charge (one cell per PE per cycle).
	Cells int
}

// CIGAR renders the traceback run-length encoded.
func (r Result) CIGAR() string {
	if len(r.Ops) == 0 {
		return "*"
	}
	var out strings.Builder
	out.Grow(len(r.Ops))
	count := 1
	for i := 1; i <= len(r.Ops); i++ {
		if i < len(r.Ops) && r.Ops[i] == r.Ops[i-1] {
			count++
			continue
		}
		out.WriteString(strconv.Itoa(count))
		out.WriteByte(byte(r.Ops[i-1]))
		count = 1
	}
	return out.String()
}

// Identity returns the fraction of traceback columns that are exact
// matches.
func (r Result) Identity(query, ref dna.Seq) float64 {
	if len(r.Ops) == 0 {
		return 0
	}
	qi, ri := r.QueryStart, r.RefStart
	matches := 0
	for _, op := range r.Ops {
		switch op {
		case OpMatch:
			if query[qi] == ref[ri] {
				matches++
			}
			qi++
			ri++
		case OpInsert:
			qi++
		case OpDelete:
			ri++
		}
	}
	return float64(matches) / float64(len(r.Ops))
}

// SmithWaterman computes the best local alignment of query against ref with
// full O(|query|·|ref|) dynamic programming.
func SmithWaterman(query, ref dna.Seq, sc Scoring) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	m, n := len(query), len(ref)
	if m == 0 || n == 0 {
		return Result{}, nil
	}
	// H[i][j]: best local score ending at query[i-1], ref[j-1].
	H := make([][]int32, m+1)
	for i := range H {
		H[i] = make([]int32, n+1)
	}
	best := int32(0)
	bi, bj := 0, 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			diag := H[i-1][j-1]
			if query[i-1] == ref[j-1] {
				diag += int32(sc.Match)
			} else {
				diag += int32(sc.Mismatch)
			}
			v := diag
			if up := H[i-1][j] + int32(sc.Gap); up > v {
				v = up
			}
			if left := H[i][j-1] + int32(sc.Gap); left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			H[i][j] = v
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best == 0 {
		return Result{Cells: m * n}, nil
	}
	// Traceback from (bi, bj) to the first zero cell.
	var ops []Op
	i, j := bi, bj
	for i > 0 && j > 0 && H[i][j] > 0 {
		diag := H[i-1][j-1]
		sub := int32(sc.Mismatch)
		if query[i-1] == ref[j-1] {
			sub = int32(sc.Match)
		}
		switch {
		case H[i][j] == diag+sub:
			ops = append(ops, OpMatch)
			i--
			j--
		case H[i][j] == H[i-1][j]+int32(sc.Gap):
			ops = append(ops, OpInsert)
			i--
		default:
			ops = append(ops, OpDelete)
			j--
		}
	}
	reverseOps(ops)
	return Result{
		Score:      int(best),
		QueryStart: i, QueryEnd: bi,
		RefStart: j, RefEnd: bj,
		Ops:   ops,
		Cells: m * n,
	}, nil
}

func reverseOps(ops []Op) {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
}

// ExtendSeed aligns query against the reference window around a seed hit:
// the seed occupies query[qPos:qPos+seedLen] and ref[rPos:rPos+seedLen], and
// the alignment is restricted to the diagonal band of half-width band around
// the seed diagonal — query base i may only pair with reference bases within
// band positions of rPos+(i-qPos). band == 0 allows substitutions but no
// indels. The DP therefore evaluates O(|query|·band) cells rather than the
// full O(|query|·window) matrix, which is what a fixed-width systolic
// extension kernel computes; Result.Cells reports the exact count.
func ExtendSeed(query, ref dna.Seq, qPos, rPos, seedLen, band int, sc Scoring) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	if seedLen <= 0 {
		return Result{}, fmt.Errorf("align: seedLen %d must be positive", seedLen)
	}
	if band < 0 {
		return Result{}, fmt.Errorf("align: band %d must be non-negative", band)
	}
	if len(query) == 0 || len(ref) == 0 {
		return Result{}, fmt.Errorf("align: query (%d bases) and reference (%d bases) must be non-empty", len(query), len(ref))
	}
	if qPos < 0 || qPos+seedLen > len(query) {
		return Result{}, fmt.Errorf("align: seed [%d,%d) outside query of length %d", qPos, qPos+seedLen, len(query))
	}
	if rPos < 0 || rPos+seedLen > len(ref) {
		return Result{}, fmt.Errorf("align: seed [%d,%d) outside reference of length %d", rPos, rPos+seedLen, len(ref))
	}
	// Reference window: enough to cover the whole query anchored at the
	// seed, plus band slack each side.
	wStart := max(0, rPos-qPos-band)
	wEnd := min(len(ref), rPos+(len(query)-qPos)+band)
	// The seed pins query position qPos to window column rPos-wStart, so the
	// seed diagonal in window coordinates is their difference.
	res, err := bandedSW(query, ref[wStart:wEnd], (rPos-wStart)-qPos, band, sc)
	if err != nil {
		return Result{}, err
	}
	res.RefStart += wStart
	res.RefEnd += wStart
	return res, nil
}

// bandedSW is local alignment restricted to the diagonal band
// |j - i - delta| <= band in 1-based DP coordinates: query base i-1 may pair
// only with reference base j-1 on a diagonal within band of delta. Cells
// outside the band are unreachable (gap moves may not cross the band edge);
// cells clipped by the reference bounds behave like the zero boundary of
// plain Smith-Waterman, so a band wide enough to hold the optimum reproduces
// SmithWaterman's result exactly.
func bandedSW(query, ref dna.Seq, delta, band int, sc Scoring) (Result, error) {
	m, n := len(query), len(ref)
	if m == 0 || n == 0 {
		return Result{}, nil
	}
	// Row i stores columns i+delta-band .. i+delta+band as H[i*w+k] with
	// k = j - i - delta + band. Row 0 and reference-clipped cells stay zero,
	// the local-alignment restart value.
	w := 2*band + 1
	H := make([]int32, (m+1)*w)
	cells := 0
	best := int32(0)
	bi, bk := 0, 0
	for i := 1; i <= m; i++ {
		jLo := max(1, i+delta-band)
		jHi := min(n, i+delta+band)
		for j := jLo; j <= jHi; j++ {
			k := j - i - delta + band
			cells++
			// The diagonal predecessor (i-1, j-1) shares k; up (i-1, j) is
			// k+1; left (i, j-1) is k-1. Moves off the band edge are
			// disallowed.
			sub := int32(sc.Mismatch)
			if query[i-1] == ref[j-1] {
				sub = int32(sc.Match)
			}
			v := H[(i-1)*w+k] + sub
			if k+1 < w {
				if up := H[(i-1)*w+k+1] + int32(sc.Gap); up > v {
					v = up
				}
			}
			if k-1 >= 0 {
				if left := H[i*w+k-1] + int32(sc.Gap); left > v {
					v = left
				}
			}
			if v < 0 {
				v = 0
			}
			H[i*w+k] = v
			if v > best {
				best, bi, bk = v, i, k
			}
		}
	}
	if best == 0 {
		return Result{Cells: cells}, nil
	}
	// Traceback from the best cell to the first zero cell, mirroring the
	// forward recurrence's preference order (diagonal, up, left).
	var ops []Op
	i, k := bi, bk
	for i > 0 {
		j := i + delta + k - band
		if j <= 0 || H[i*w+k] <= 0 {
			break
		}
		sub := int32(sc.Mismatch)
		if query[i-1] == ref[j-1] {
			sub = int32(sc.Match)
		}
		switch {
		case H[i*w+k] == H[(i-1)*w+k]+sub:
			ops = append(ops, OpMatch)
			i--
		case k+1 < w && H[i*w+k] == H[(i-1)*w+k+1]+int32(sc.Gap):
			ops = append(ops, OpInsert)
			i--
			k++
		default:
			ops = append(ops, OpDelete)
			k--
		}
	}
	reverseOps(ops)
	return Result{
		Score:      int(best),
		QueryStart: i, QueryEnd: bi,
		RefStart: i + delta + k - band, RefEnd: bi + delta + bk - band,
		Ops:   ops,
		Cells: cells,
	}, nil
}
