// Package bwaver's root-level benchmarks regenerate every figure and table
// of the paper's evaluation (§IV) through the testing.B interface, one
// benchmark per artifact, plus the ablation benches DESIGN.md calls out.
//
// They run at a reduced scale so `go test -bench=.` terminates in minutes;
// use cmd/bwaver-bench with -ref-scale/-read-scale for larger runs and
// human-readable tables. Custom metrics carry the quantities the paper
// plots (structure MB, modeled FPGA ms, speedups).
package bwaver_test

import (
	"io"
	"testing"

	"bwaver/internal/baseline"
	"bwaver/internal/bench"
	"bwaver/internal/core"
	"bwaver/internal/dna"
	"bwaver/internal/fmindex"
	"bwaver/internal/fpga"
	"bwaver/internal/readsim"
	"bwaver/internal/rrr"
	"bwaver/internal/wavelet"
)

// benchScale shrinks the paper workloads ~300x so the full suite is
// minutes, not hours.
var benchScale = bench.Scale{Ref: 0.01, Reads: 0.0005, SampleReads: 5000, Seed: 1}

// BenchmarkFig5 regenerates Fig. 5: structure size across the (b, sf) grid
// for both references. The size of the paper's hardware configuration
// (E. coli, b=15, sf=100) is reported as a custom metric.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5And6(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Ref == bench.EColi && r.B == 15 && r.SF == 100 {
				b.ReportMetric(float64(r.TotalBytes())/1e6, "ecoli-b15-sf100-MB")
				b.ReportMetric(r.Saving()*100, "saving-%")
			}
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6: structure build time across the grid.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5And6(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		var minB, maxB float64
		for _, r := range rows {
			if r.Ref != bench.EColi || r.SF != 50 {
				continue
			}
			t := r.BuildTime.Seconds() * 1e3
			if r.B == bench.GridBlockSizes[0] {
				minB = t
			}
			if r.B == bench.GridBlockSizes[len(bench.GridBlockSizes)-1] {
				maxB = t
			}
		}
		b.ReportMetric(minB, "ecoli-b5-encode-ms")
		b.ReportMetric(maxB, "ecoli-b15-encode-ms")
	}
}

// BenchmarkFig7 regenerates Fig. 7: mapping time for ~240k (scaled) 100 bp
// reads as the mapping ratio sweeps 0-100%.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Ref == bench.EColi && r.B == 15 && r.SF == 50 {
				switch r.MappingRatio {
				case 0:
					b.ReportMetric(r.FPGATime.Seconds()*1e3, "fpga-ratio0-ms")
				case 1:
					b.ReportMetric(r.FPGATime.Seconds()*1e3, "fpga-ratio100-ms")
				}
			}
		}
	}
}

// BenchmarkTable1 regenerates Table I: 100 M (scaled) 35 bp reads on
// E. coli across BWaveR-FPGA, BWaveR-CPU, and the Bowtie2-like baseline.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.Table1(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		block := results[0]
		b.ReportMetric(block.Entries[0].Time.Seconds()*1e3, "fpga-ms")
		b.ReportMetric(block.Entries[1].Slowdown, "speedup-vs-cpu")
		b.ReportMetric(block.Entries[4].Slowdown, "speedup-vs-16t")
		b.ReportMetric(block.Entries[1].PowerRatio, "powereff-vs-cpu")
	}
}

// BenchmarkTable2 regenerates Table II: 1/10/100 M (scaled) 40 bp reads on
// chromosome 21. The headline metric is how the CPU speedup grows with the
// read count (amortisation of the fixed device overhead).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.Table2(benchScale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Entries[1].Slowdown, "speedup-1M")
		b.ReportMetric(results[1].Entries[1].Slowdown, "speedup-10M")
		b.ReportMetric(results[2].Entries[1].Slowdown, "speedup-100M")
	}
}

// --- Ablation benches (DESIGN.md) ---

func benchIndexInputs(b *testing.B) ([]uint8, []dna.Seq) {
	b.Helper()
	ref, err := readsim.EColiLike(1, 0.05) // ~232 kbp
	if err != nil {
		b.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.ReadsConfig{
		Count: 2000, Length: 40, MappingRatio: 0.5, RevCompFraction: 0.5, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	text := make([]uint8, len(ref))
	for i, base := range ref {
		text[i] = uint8(base)
	}
	return text, readsim.Seqs(reads)
}

// BenchmarkOccProviders compares rank throughput of the succinct wavelet
// structure against the checkpointed and flat layouts (the CPU-side design
// space of §II).
func BenchmarkOccProviders(b *testing.B) {
	text, _ := benchIndexInputs(b)
	providers := []struct {
		name  string
		build func() (fmindex.OccProvider, error)
	}{
		{"wavelet-rrr", func() (fmindex.OccProvider, error) {
			return fmindex.NewWaveletOcc(text, 4, rrr.DefaultParams)
		}},
		{"wavelet-plain", func() (fmindex.OccProvider, error) {
			return fmindex.NewWaveletOccBackend(text, 4, wavelet.PlainBackend())
		}},
		{"checkpoint", func() (fmindex.OccProvider, error) { return fmindex.NewCheckpointOcc(text) }},
		{"flat", func() (fmindex.OccProvider, error) { return fmindex.NewFlatOcc(text, 4) }},
		{"rlfm", func() (fmindex.OccProvider, error) {
			return fmindex.NewRLFMOcc(text, 4, rrr.DefaultParams)
		}},
	}
	for _, p := range providers {
		occ, err := p.build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(occ.SizeBytes())/1e6, "MB")
			for i := 0; i < b.N; i++ {
				occ.Occ(uint8(i&3), (i*7919)%(occ.Len()+1))
			}
		})
	}
}

// BenchmarkWaveletBackends compares end-to-end mapping with RRR versus
// plain node bit-vectors — the compression/time trade at the system level.
func BenchmarkWaveletBackends(b *testing.B) {
	text, reads := benchIndexInputs(b)
	ref := make(dna.Seq, len(text))
	for i, s := range text {
		ref[i] = dna.Base(s)
	}
	for _, cfg := range []struct {
		name  string
		plain bool
	}{{"rrr", false}, {"plain", true}} {
		ix, err := core.BuildIndex(ref, core.IndexConfig{PlainBitvectors: cfg.plain, Locate: core.LocateNone})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(ix.StructureBytes())/1e6, "MB")
			for i := 0; i < b.N; i++ {
				ix.MapRead(reads[i%len(reads)])
			}
		})
	}
}

// BenchmarkLocateStrategies compares the paper's host-side full suffix
// array against the sampled-SA extension.
func BenchmarkLocateStrategies(b *testing.B) {
	text, reads := benchIndexInputs(b)
	ref := make(dna.Seq, len(text))
	for i, s := range text {
		ref[i] = dna.Base(s)
	}
	for _, cfg := range []struct {
		name string
		c    core.IndexConfig
	}{
		{"full-sa", core.IndexConfig{Locate: core.LocateFullSA}},
		{"sampled-8", core.IndexConfig{Locate: core.LocateSampled, SampleRate: 8}},
		{"sampled-32", core.IndexConfig{Locate: core.LocateSampled, SampleRate: 32}},
	} {
		ix, err := core.BuildIndex(ref, cfg.c)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(ix.SizeBytes())/1e6, "MB")
			for i := 0; i < b.N; i++ {
				res := ix.MapRead(reads[i%len(reads)])
				if _, err := ix.FM().Locate(res.Forward); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiPE models the paper's future-work multi-core kernel:
// modeled kernel time versus PE count.
func BenchmarkMultiPE(b *testing.B) {
	text, reads := benchIndexInputs(b)
	ref := make(dna.Seq, len(text))
	for i, s := range text {
		ref[i] = dna.Base(s)
	}
	ix, err := core.BuildIndex(ref, core.IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for _, pes := range []int{1, 2, 4, 8} {
		dev, err := fpga.NewDevice(fpga.Config{PEs: pes})
		if err != nil {
			b.Fatal(err)
		}
		kernel, err := dev.Program(ix)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("pes="+itoa(pes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := kernel.MapReads(reads)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(run.Profile.KernelCycles), "kernel-cycles")
			}
		})
	}
}

// BenchmarkBaselineThreads measures the Bowtie2-like baseline's thread
// scaling, the 1/8/16-thread axis of Tables I and II.
func BenchmarkBaselineThreads(b *testing.B) {
	text, reads := benchIndexInputs(b)
	ref := make(dna.Seq, len(text))
	for i, s := range text {
		ref[i] = dna.Base(s)
	}
	m, err := baseline.NewMapper(ref)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 8, 16} {
		b.Run("threads="+itoa(threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := m.MapReads(reads, threads, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
