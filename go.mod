module bwaver

go 1.22
